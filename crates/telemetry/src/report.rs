//! The aggregated [`TelemetryReport`] and its hand-rolled JSON form.
//!
//! Like the sweep checkpoint files, the serialization is deliberately
//! tiny and dependency-free (the workspace takes no serde): plain
//! string building with a shared escaper, verified by a scanner-style
//! validity check in tests.

use crate::hist::HistSummary;
use crate::sink::{Sink, SpanRecord};
use crate::stats::{SimStats, SolveStats};
use std::fmt::Write as _;
use std::path::Path;

/// Escape a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` the way the checkpoint code does: finite values
/// verbatim, non-finite as `null` (JSON has no NaN/Infinity).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Everything one instrumented run observed, across every layer.
#[derive(Debug, Clone, Default)]
pub struct TelemetryReport {
    /// Free-form context pairs (`("nf", "dpi")`, `("nic", ...)`,
    /// `("workload", ...)`), emitted first so a report is
    /// self-describing.
    pub context: Vec<(String, String)>,
    /// Pipeline spans, in completion order.
    pub spans: Vec<SpanRecord>,
    /// Named counters from the sink, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Latency-histogram summaries (name, quantiles), sorted by name.
    /// Values are in the unit the histogram recorded (µs for serve).
    pub hists: Vec<(String, HistSummary)>,
    /// Aggregated ILP solver stats, when any solve ran.
    pub solver: Option<SolveStats>,
    /// Aggregated simulator stats, when any simulation ran.
    pub sim: Option<SimStats>,
}

impl TelemetryReport {
    /// Build a report from a sink's spans and counters (solver/sim
    /// sections are attached by the caller).
    pub fn from_sink(sink: &Sink) -> Self {
        TelemetryReport {
            spans: sink.spans().to_vec(),
            counters: sink.counters(),
            ..TelemetryReport::default()
        }
    }

    /// Add one context pair.
    pub fn with_context(mut self, key: &str, value: &str) -> Self {
        self.context.push((key.to_string(), value.to_string()));
        self
    }

    /// Serialize the report as one pretty-printed JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"telemetry_version\": 1,\n");
        out.push_str("  \"context\": {");
        for (i, (k, v)) in self.context.iter().enumerate() {
            let _ = write!(
                out,
                "{}\"{}\": \"{}\"",
                if i == 0 { "" } else { ", " },
                json_escape(k),
                json_escape(v)
            );
        }
        out.push_str("},\n  \"spans\": [\n");
        for (i, s) in self.spans.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"start_us\": {}, \"dur_us\": {}, \"depth\": {}}}",
                json_escape(&s.name),
                s.start_us,
                s.dur_us,
                s.depth
            );
            out.push_str(if i + 1 < self.spans.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            let _ = write!(
                out,
                "{}\"{}\": {v}",
                if i == 0 { "" } else { ", " },
                json_escape(k)
            );
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, (name, h)) in self.hists.iter().enumerate() {
            let _ = write!(
                out,
                "{}\"{}\": {{\"count\": {}, \"sum\": {}, \"p50\": {}, \"p90\": {}, \
                 \"p99\": {}, \"max\": {}}}",
                if i == 0 { "" } else { ", " },
                json_escape(name),
                h.count,
                h.sum,
                h.p50,
                h.p90,
                h.p99,
                h.max
            );
        }
        out.push_str("},\n");
        match &self.solver {
            Some(s) => {
                out.push_str("  \"solver\": {\n");
                let _ = writeln!(out, "    \"nodes_explored\": {},", s.nodes_explored);
                let _ = writeln!(out, "    \"lp_solves\": {},", s.lp_solves);
                let _ = writeln!(out, "    \"simplex_pivots\": {},", s.simplex_pivots);
                let _ = writeln!(out, "    \"warm_start_hits\": {},", s.warm_start_hits);
                let _ = writeln!(out, "    \"warm_start_misses\": {},", s.warm_start_misses);
                let _ = writeln!(out, "    \"memo_hits\": {},", s.memo_hits);
                out.push_str("    \"incumbent_trajectory\": [");
                for (i, (n, obj)) in s.incumbent_trajectory.iter().enumerate() {
                    let _ = write!(
                        out,
                        "{}[{n}, {}]",
                        if i == 0 { "" } else { ", " },
                        json_f64(*obj)
                    );
                }
                out.push_str("],\n");
                let _ = writeln!(out, "    \"proven_optimal\": {}", s.proven_optimal);
                out.push_str("  },\n");
            }
            None => out.push_str("  \"solver\": null,\n"),
        }
        match &self.sim {
            Some(s) => {
                out.push_str("  \"sim\": {\n");
                let _ = writeln!(out, "    \"injected\": {},", s.injected);
                let _ = writeln!(out, "    \"completed\": {},", s.completed);
                let _ = writeln!(out, "    \"truncated\": {},", s.truncated);
                out.push_str("    \"drops\": {");
                let _ = write!(
                    out,
                    "\"overflow\": {}, \"fault_corrupt\": {}, \"fault_accel\": {}, \
                     \"watchdog_trips\": {}, \"total\": {}",
                    s.overflow_drops,
                    s.fault_corrupt_drops,
                    s.fault_accel_drops,
                    s.watchdog_trips,
                    s.dropped_total()
                );
                out.push_str("},\n");
                let _ = writeln!(out, "    \"conserved\": {},", s.conserved());
                let _ = writeln!(out, "    \"span_cycles\": {},", s.span_cycles);
                out.push_str("    \"islands\": [");
                for (i, is) in s.islands.iter().enumerate() {
                    let _ = write!(
                        out,
                        "{}{{\"island\": {}, \"threads\": {}, \"busy_cycles\": {}, \
                         \"occupancy\": {}}}",
                        if i == 0 { "" } else { ", " },
                        is.island,
                        is.threads,
                        is.busy_cycles,
                        json_f64(is.occupancy(s.span_cycles))
                    );
                }
                out.push_str("],\n    \"mem_levels\": [");
                for (i, ml) in s.mem_levels.iter().enumerate() {
                    let _ = write!(
                        out,
                        "{}{{\"name\": \"{}\", \"accesses\": {}}}",
                        if i == 0 { "" } else { ", " },
                        json_escape(&ml.name),
                        ml.accesses
                    );
                }
                out.push_str("],\n");
                let _ = writeln!(
                    out,
                    "    \"emem_cache\": {{\"hits\": {}, \"misses\": {}, \"hit_rate\": {}}},",
                    s.emem_cache_hits,
                    s.emem_cache_misses,
                    s.emem_hit_rate().map(json_f64).unwrap_or_else(|| "null".into())
                );
                out.push_str("    \"accels\": [");
                for (i, ac) in s.accels.iter().enumerate() {
                    let _ = write!(
                        out,
                        "{}{{\"name\": \"{}\", \"calls\": {}, \"busy_cycles\": {}, \
                         \"hol_stall_cycles\": {}, \"queue_highwater\": {}}}",
                        if i == 0 { "" } else { ", " },
                        json_escape(&ac.name),
                        ac.calls,
                        ac.busy_cycles,
                        ac.hol_stall_cycles,
                        ac.queue_highwater
                    );
                }
                out.push_str("],\n");
                let _ = writeln!(out, "    \"switch_transfers\": {}", s.switch_transfers);
                out.push_str("  }\n");
            }
            None => out.push_str("  \"sim\": null\n"),
        }
        out.push_str("}\n");
        out
    }

    /// Write the JSON form atomically (temp file + rename), mirroring
    /// the checkpoint writer.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_json())
            .map_err(|e| format!("write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, path)
            .map_err(|e| format!("rename {} -> {}: {e}", tmp.display(), path.display()))
    }
}

/// Test-only structural JSON validation: strings (with escapes) are
/// skipped, and braces/brackets must balance and close in order. Not a
/// full parser, but enough to catch the classes of bugs hand-rolled
/// serialization produces (unescaped quotes, trailing commas are left
/// to the CI `python3 -c json.load` smoke).
#[cfg(test)]
pub(crate) fn assert_valid_json(s: &str) {
    let mut stack = Vec::new();
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                // Consume the string literal, honoring escapes.
                loop {
                    match chars.next() {
                        Some('\\') => {
                            chars.next();
                        }
                        Some('"') => break,
                        Some(_) => {}
                        None => panic!("unterminated string in {s}"),
                    }
                }
            }
            '{' | '[' => stack.push(c),
            '}' => assert_eq!(stack.pop(), Some('{'), "unbalanced }} in {s}"),
            ']' => assert_eq!(stack.pop(), Some('['), "unbalanced ] in {s}"),
            _ => {}
        }
    }
    assert!(stack.is_empty(), "unclosed delimiters {stack:?} in {s}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{AccelStats, IslandStats, MemLevelStats};

    #[test]
    fn escape_handles_quotes_and_control_chars() {
        assert_eq!(json_escape(r#"a"b"#), r#"a\"b"#);
        assert_eq!(json_escape("a\\b"), "a\\\\b");
        assert_eq!(json_escape("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(json_escape("\u{01}"), "\\u0001");
    }

    #[test]
    fn empty_report_serializes_validly() {
        let json = TelemetryReport::default().to_json();
        assert_valid_json(&json);
        assert!(json.contains("\"solver\": null"));
        assert!(json.contains("\"sim\": null"));
    }

    #[test]
    fn full_report_serializes_every_section() {
        let mut sink = Sink::memory();
        sink.span("solve", || ());
        sink.count("cells", 4);
        let report = TelemetryReport::from_sink(&sink)
            .with_context("nf", "dpi \"ported\"")
            .with_context("nic", "netronome");
        let report = TelemetryReport {
            solver: Some(SolveStats {
                nodes_explored: 12,
                lp_solves: 30,
                simplex_pivots: 456,
                warm_start_hits: 8,
                warm_start_misses: 2,
                cell_warm_hits: 3,
                cell_warm_misses: 1,
                memo_hits: 5,
                incumbent_trajectory: vec![(1, 1200.5), (7, 1100.0)],
                proven_optimal: true,
            }),
            sim: Some(SimStats {
                injected: 400,
                completed: 390,
                overflow_drops: 6,
                fault_corrupt_drops: 3,
                fault_accel_drops: 1,
                span_cycles: 1_000_000,
                islands: vec![IslandStats { island: 0, threads: 8, busy_cycles: 5000 }],
                mem_levels: vec![MemLevelStats { name: "emem".into(), accesses: 900 }],
                emem_cache_hits: 700,
                emem_cache_misses: 200,
                accels: vec![AccelStats {
                    name: "checksum".into(),
                    calls: 390,
                    busy_cycles: 40_000,
                    hol_stall_cycles: 77,
                    queue_highwater: 2,
                }],
                switch_transfers: 1290,
                ..SimStats::default()
            }),
            ..report
        };
        let json = report.to_json();
        assert_valid_json(&json);
        for needle in [
            "\"nodes_explored\": 12",
            "\"incumbent_trajectory\": [[1, 1200.5], [7, 1100]]",
            "\"conserved\": true",
            "\"hit_rate\": 0.7",
            "\"hol_stall_cycles\": 77",
            "\"switch_transfers\": 1290",
            "dpi \\\"ported\\\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn histogram_summaries_serialize_under_their_names() {
        let report = TelemetryReport {
            hists: vec![(
                "serve.service_us".into(),
                HistSummary { count: 3, sum: 600, p50: 100, p90: 300, p99: 300, max: 310 },
            )],
            ..TelemetryReport::default()
        };
        let json = report.to_json();
        assert_valid_json(&json);
        assert!(json.contains(
            "\"serve.service_us\": {\"count\": 3, \"sum\": 600, \"p50\": 100, \
             \"p90\": 300, \"p99\": 300, \"max\": 310}"
        ));
    }

    #[test]
    fn save_is_atomic_and_readable() {
        let path = std::env::temp_dir()
            .join(format!("clara-telemetry-{}.json", std::process::id()));
        let report = TelemetryReport::default().with_context("k", "v");
        report.save(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_valid_json(&text);
        assert!(text.contains("\"telemetry_version\": 1"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(2.5), "2.5");
    }
}
