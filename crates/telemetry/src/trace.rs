//! Per-packet stage timelines and Chrome trace-event export.
//!
//! The timeline records, for the first N packets of a simulation, one
//! span per executed stage: which packet, which stage, which unit, when
//! it started and how long it ran (all in NIC cycles). The export emits
//! the Chrome trace-event JSON format — an array of complete (`"ph":
//! "X"`) events with microsecond `ts`/`dur` — which Perfetto and
//! `chrome://tracing` load directly: one track (`tid`) per hardware
//! thread, packets visible as labeled spans along each track.

use crate::report::json_escape;
use std::fmt::Write as _;

/// One recorded stage execution.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSpan {
    /// Packet index in trace order.
    pub packet: u64,
    /// Stage name from the [`NicProgram`](https://docs.rs/clara-nicsim).
    pub stage: String,
    /// Unit label (`npu`, `checksum-accel`, ...).
    pub unit: String,
    /// Hardware thread the packet ran on (one Perfetto track each).
    pub tid: u32,
    /// Stage start, cycles since simulation start.
    pub start_cycles: u64,
    /// Stage duration, cycles.
    pub dur_cycles: u64,
}

/// A bounded per-packet stage recorder. Recording stops after
/// [`StageTimeline::limit`] distinct packets so the opt-in stays cheap
/// on long traces.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageTimeline {
    /// Record stages for packets with index below this.
    pub limit: u64,
    /// Recorded stage spans, in execution order.
    pub spans: Vec<StageSpan>,
}

impl StageTimeline {
    /// A timeline recording the first `limit` packets.
    pub fn first(limit: u64) -> Self {
        StageTimeline { limit, spans: Vec::new() }
    }

    /// Whether stages of packet `packet` should be recorded.
    #[inline]
    pub fn wants(&self, packet: u64) -> bool {
        packet < self.limit
    }

    /// Record one stage execution (caller has checked [`Self::wants`]).
    pub fn record(
        &mut self,
        packet: u64,
        stage: &str,
        unit: &str,
        tid: u32,
        start_cycles: u64,
        dur_cycles: u64,
    ) {
        self.spans.push(StageSpan {
            packet,
            stage: stage.to_string(),
            unit: unit.to_string(),
            tid,
            start_cycles,
            dur_cycles,
        });
    }

    /// Convert to Chrome trace events. `freq_ghz` maps cycles to
    /// microseconds (`µs = cycles / (freq_ghz * 1000)`); pass the NIC
    /// clock so Perfetto's time axis reads in real time.
    pub fn to_chrome(&self, freq_ghz: f64) -> ChromeTrace {
        let scale = 1.0 / (freq_ghz.max(1e-9) * 1000.0);
        ChromeTrace {
            events: self
                .spans
                .iter()
                .map(|s| TraceEvent {
                    name: format!("pkt{} {}", s.packet, s.stage),
                    cat: s.unit.clone(),
                    ts_us: s.start_cycles as f64 * scale,
                    dur_us: s.dur_cycles as f64 * scale,
                    pid: 1,
                    tid: s.tid,
                })
                .collect(),
        }
    }
}

/// One complete (`"ph": "X"`) Chrome trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event label shown on the span.
    pub name: String,
    /// Category (we use the executing unit).
    pub cat: String,
    /// Start timestamp, microseconds.
    pub ts_us: f64,
    /// Duration, microseconds.
    pub dur_us: f64,
    /// Process id (constant 1: one simulated NIC).
    pub pid: u32,
    /// Thread id (one track per hardware thread).
    pub tid: u32,
}

/// A Chrome trace-event file: `{"traceEvents": [...]}`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChromeTrace {
    /// The events, already in emission order.
    pub events: Vec<TraceEvent>,
}

impl ChromeTrace {
    /// Serialize to the JSON object form Perfetto and
    /// `chrome://tracing` accept.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\": [\n");
        for (i, e) in self.events.iter().enumerate() {
            let _ = write!(
                out,
                "  {{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"ts\": {:.3}, \
                 \"dur\": {:.3}, \"pid\": {}, \"tid\": {}}}",
                json_escape(&e.name),
                json_escape(&e.cat),
                e.ts_us,
                e.dur_us,
                e.pid,
                e.tid
            );
            out.push_str(if i + 1 < self.events.len() { ",\n" } else { "\n" });
        }
        out.push_str("]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::assert_valid_json;

    #[test]
    fn timeline_respects_its_packet_limit() {
        let tl = StageTimeline::first(3);
        assert!(tl.wants(0) && tl.wants(2));
        assert!(!tl.wants(3));
    }

    #[test]
    fn chrome_export_has_required_fields_and_parses() {
        let mut tl = StageTimeline::first(2);
        tl.record(0, "parse", "npu", 4, 100, 50);
        tl.record(1, "lookup \"q\"", "npu", 5, 180, 300);
        let trace = tl.to_chrome(0.8);
        assert_eq!(trace.events.len(), 2);
        let json = trace.to_json();
        assert_valid_json(&json);
        for field in ["\"ph\": \"X\"", "\"ts\": ", "\"dur\": ", "\"pid\": ", "\"tid\": "] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        // 100 cycles at 0.8 GHz = 0.125 µs.
        assert!(json.contains("\"ts\": 0.125"), "{json}");
    }

    #[test]
    fn empty_trace_is_valid_json() {
        let json = ChromeTrace::default().to_json();
        assert_valid_json(&json);
        assert!(json.contains("traceEvents"));
    }
}
