//! Rolling-window rate gauges over an epoch ring of atomic counters.
//!
//! The serving layer wants "req/s over the last 1 s / 10 s / 60 s"
//! without timestamping every event. [`RateWindows`] keeps a ring of
//! per-second slots; each slot is an `(epoch, count)` pair of atomics.
//! Recording maps the current wall-second onto a slot, claims the slot
//! for that second with a CAS on the epoch (the winner resets the
//! count), and then does a relaxed `fetch_add`. Reading sums the slots
//! whose epoch falls inside the trailing window.
//!
//! The ring holds [`SLOTS`] = 128 seconds, comfortably more than the
//! longest supported window (60 s), so a slot is never reused while it
//! can still be read. The structure is monitoring-grade, not
//! accounting-grade: a record racing the second boundary can land in
//! either adjacent second, and a reader concurrent with a slot reset
//! can over- or under-count that one slot by the in-flight deltas.
//! Totals in `ServeStats` remain the source of truth for conservation
//! invariants; these gauges answer "how fast *right now*".
//!
//! Time is injected: callers use [`RateWindows::record`] /
//! [`RateWindows::rate`] for wall-clock behavior (seconds since the
//! gauge was created, via a private [`Instant`] anchor), while tests
//! drive [`RateWindows::record_at`] / [`RateWindows::rate_at`] with
//! explicit epochs for determinism.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Ring capacity in seconds. Must exceed the largest queried window.
pub const SLOTS: usize = 128;

/// Trailing windows surfaced by the serving layer, in seconds.
pub const WINDOWS_S: [u64; 3] = [1, 10, 60];

struct Slot {
    /// Wall-second this slot currently represents, offset by 1 so that
    /// 0 means "never written" (distinguishes an untouched ring from
    /// second 0).
    epoch: AtomicU64,
    count: AtomicU64,
}

/// A set of per-second counters answering trailing-window rate queries.
pub struct RateWindows {
    slots: Vec<Slot>,
    anchor: Instant,
}

impl Default for RateWindows {
    fn default() -> Self {
        RateWindows::new()
    }
}

impl std::fmt::Debug for RateWindows {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RateWindows").finish_non_exhaustive()
    }
}

impl RateWindows {
    pub fn new() -> Self {
        RateWindows {
            slots: (0..SLOTS)
                .map(|_| Slot { epoch: AtomicU64::new(0), count: AtomicU64::new(0) })
                .collect(),
            anchor: Instant::now(),
        }
    }

    fn now_s(&self) -> u64 {
        self.anchor.elapsed().as_secs()
    }

    /// Record `n` events at the current wall-second. Lock-free; at most
    /// one CAS per second-boundary crossing per slot.
    #[inline]
    pub fn record(&self, n: u64) {
        self.record_at(self.now_s(), n);
    }

    /// Record `n` events at an explicit second (test hook; also the
    /// implementation of [`RateWindows::record`]).
    pub fn record_at(&self, now_s: u64, n: u64) {
        let slot = &self.slots[(now_s as usize) % SLOTS];
        let want = now_s + 1;
        let cur = slot.epoch.load(Ordering::Relaxed);
        if cur != want {
            // Claim the slot for this second; the single winner resets
            // the stale count. Losers (same second) just add below; a
            // loser from an older second re-reads and retries once via
            // recursion-free fallthrough — the CAS winner has already
            // installed `want`, so their add lands in the right slot.
            if slot
                .epoch
                .compare_exchange(cur, want, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                slot.count.store(0, Ordering::Relaxed);
            }
        }
        slot.count.fetch_add(n, Ordering::Relaxed);
    }

    /// Events per second over the trailing `window_s` seconds (the
    /// current partial second included).
    pub fn rate(&self, window_s: u64) -> f64 {
        self.rate_at(window_s, self.now_s())
    }

    /// Raw event count over the trailing `window_s` seconds ending now.
    pub fn count(&self, window_s: u64) -> u64 {
        self.count_at(window_s, self.now_s())
    }

    /// Raw event count over the trailing `window_s` seconds ending at
    /// `now_s` inclusive.
    pub fn count_at(&self, window_s: u64, now_s: u64) -> u64 {
        let window_s = window_s.clamp(1, SLOTS as u64 - 1);
        let oldest = now_s.saturating_sub(window_s - 1);
        self.slots
            .iter()
            .map(|slot| {
                let epoch = slot.epoch.load(Ordering::Acquire);
                if epoch == 0 {
                    return 0; // never written
                }
                let sec = epoch - 1;
                if sec >= oldest && sec <= now_s {
                    slot.count.load(Ordering::Relaxed)
                } else {
                    0
                }
            })
            .sum()
    }

    /// Events per second over the trailing window ending at `now_s`.
    pub fn rate_at(&self, window_s: u64, now_s: u64) -> f64 {
        let window_s = window_s.clamp(1, SLOTS as u64 - 1);
        self.count_at(window_s, now_s) as f64 / window_s as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_second_rate() {
        let r = RateWindows::new();
        r.record_at(100, 5);
        assert_eq!(r.count_at(1, 100), 5);
        assert!((r.rate_at(1, 100) - 5.0).abs() < 1e-9);
        // One second later the 1s window no longer covers it.
        assert_eq!(r.count_at(1, 101), 0);
        // ...but the 10s window still does.
        assert!((r.rate_at(10, 101) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn windows_cover_exactly_their_trailing_span() {
        let r = RateWindows::new();
        for s in 0..60u64 {
            r.record_at(s, 2);
        }
        assert_eq!(r.count_at(60, 59), 120);
        assert!((r.rate_at(60, 59) - 2.0).abs() < 1e-9);
        assert_eq!(r.count_at(10, 59), 20);
        assert_eq!(r.count_at(1, 59), 2);
        // Advance 30s with no traffic: half the minute window remains.
        assert_eq!(r.count_at(60, 89), 60);
    }

    #[test]
    fn slot_reuse_resets_stale_counts() {
        let r = RateWindows::new();
        r.record_at(5, 10);
        // SLOTS seconds later the same slot index recurs.
        r.record_at(5 + SLOTS as u64, 3);
        assert_eq!(r.count_at(1, 5 + SLOTS as u64), 3);
        // The old second is out of every supported window by then.
        assert_eq!(r.count_at(60, 5 + SLOTS as u64), 3);
    }

    #[test]
    fn second_zero_is_recordable() {
        let r = RateWindows::new();
        r.record_at(0, 7);
        assert_eq!(r.count_at(1, 0), 7);
        assert_eq!(r.count_at(60, 0), 7);
    }

    #[test]
    fn concurrent_records_within_one_second_all_land() {
        let r = std::sync::Arc::new(RateWindows::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let r = std::sync::Arc::clone(&r);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        r.record_at(42, 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(r.count_at(1, 42), 40_000);
    }
}
