//! A fixed-capacity lock-free flight recorder for structured events.
//!
//! When a worker panics or the daemon drains, the question is always
//! "what happened *just before*". The [`FlightRecorder`] keeps the
//! last `capacity` events in a ring of fixed-size slots, written
//! wait-free from any thread and dumped as JSONL on demand.
//!
//! ## Slot protocol (per-slot seqlock)
//!
//! Each slot carries a `stamp` word encoding its state:
//!
//! * `0` — never written,
//! * odd (`(seq+1) << 1 | 1`) — a writer is mid-update,
//! * even (`(seq+1) << 1`) — committed, holding event `seq`.
//!
//! A writer claims a slot by `fetch_add` on the global sequence
//! counter (`seq` is therefore unique and monotonic), stores the odd
//! stamp with `Release`, fills the payload fields with relaxed stores,
//! then publishes the even stamp with `Release`. A reader loads the
//! stamp (`Acquire`), copies the payload, and re-loads the stamp: if
//! either load is odd or they disagree, the slot was torn mid-read and
//! is dropped. Torn or overwritten slots lose *old* events only — a
//! committed event is never corrupted into a wrong event, because the
//! stamp pins the sequence number the payload belongs to.
//!
//! ## Ordering guarantees
//!
//! Sequence numbers are claimed before payloads are visible, so two
//! events written by the *same thread* always appear in program order.
//! Events from different threads are ordered by claim order, which is
//! a valid linearization of the `fetch_add`s — good enough to read an
//! admit → dequeue → panic causal chain for one request, since those
//! transitions happen-before each other through the job queue anyway.
//! A dump sorts surviving slots by sequence number; gaps mean events
//! were overwritten (ring wrapped) or torn (rare), never reordered.
//!
//! Capacity 0 disables the recorder entirely: `record` returns without
//! touching memory, making the instrumentation zero-cost when off.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Event kinds the serving layer records. The wire/JSONL name is
/// [`EventKind::name`]; the numeric value is stored in the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// Job admitted to the queue (`a` = req id, `b` = queue depth).
    Admit = 1,
    /// Job shed by admission control (`a` = req id, `b` = retry hint ms).
    Shed = 2,
    /// Worker picked the job up (`a` = req id, `b` = queue wait µs).
    Dequeue = 3,
    /// Job completed ok (`a` = req id, `b` = service µs).
    Complete = 4,
    /// Job hit its deadline (`a` = req id, `b` = deadline ms).
    Timeout = 5,
    /// Worker panicked running the job (`a` = req id, `b` = worker slot).
    Panic = 6,
    /// Supervisor respawned a worker (`a` = worker slot).
    Respawn = 7,
    /// A session was quarantined after a panic (`a` = req id).
    Quarantine = 8,
    /// The daemon began draining (`a` = jobs still queued).
    Drain = 9,
}

impl EventKind {
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Admit => "admit",
            EventKind::Shed => "shed",
            EventKind::Dequeue => "dequeue",
            EventKind::Complete => "complete",
            EventKind::Timeout => "timeout",
            EventKind::Panic => "panic",
            EventKind::Respawn => "respawn",
            EventKind::Quarantine => "quarantine",
            EventKind::Drain => "drain",
        }
    }

    fn from_u8(v: u8) -> Option<EventKind> {
        Some(match v {
            1 => EventKind::Admit,
            2 => EventKind::Shed,
            3 => EventKind::Dequeue,
            4 => EventKind::Complete,
            5 => EventKind::Timeout,
            6 => EventKind::Panic,
            7 => EventKind::Respawn,
            8 => EventKind::Quarantine,
            9 => EventKind::Drain,
            _ => return None,
        })
    }
}

/// One committed event, as read back out of the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Monotonic sequence number (unique across the recorder's life).
    pub seq: u64,
    /// Microseconds since the recorder was created.
    pub ts_us: u64,
    pub kind: EventKind,
    /// Reply/status code context (0 when not applicable).
    pub code: u16,
    /// Primary operand — the request id for request-scoped events.
    pub a: u64,
    /// Secondary operand — see [`EventKind`] per-variant docs.
    pub b: u64,
}

impl FlightEvent {
    /// One JSONL line: stable keys, no trailing newline.
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"seq\":{},\"ts_us\":{},\"event\":\"{}\",\"code\":{},\"req\":{},\"val\":{}}}",
            self.seq,
            self.ts_us,
            self.kind.name(),
            self.code,
            self.a,
            self.b
        )
    }
}

struct EventSlot {
    stamp: AtomicU64,
    ts_us: AtomicU64,
    /// `kind << 8 | code` packed; kind 0 never occurs for a committed
    /// slot so a zeroed payload can't masquerade as a real event.
    kind_code: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

/// The ring buffer. Cheap to share behind an `Arc`; all methods take
/// `&self`.
pub struct FlightRecorder {
    slots: Vec<EventSlot>,
    seq: AtomicU64,
    anchor: Instant,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.seq.load(Ordering::Relaxed))
            .finish()
    }
}

impl FlightRecorder {
    /// `capacity` 0 disables recording; otherwise the last `capacity`
    /// events are retained.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            slots: (0..capacity)
                .map(|_| EventSlot {
                    stamp: AtomicU64::new(0),
                    ts_us: AtomicU64::new(0),
                    kind_code: AtomicU64::new(0),
                    a: AtomicU64::new(0),
                    b: AtomicU64::new(0),
                })
                .collect(),
            seq: AtomicU64::new(0),
            anchor: Instant::now(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (not the number retained).
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Record one event. Wait-free: one `fetch_add` plus five stores.
    /// A no-op when the recorder was built with capacity 0.
    #[inline]
    pub fn record(&self, kind: EventKind, code: u16, a: u64, b: u64) {
        if self.slots.is_empty() {
            return;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq as usize) % self.slots.len()];
        let stamp = (seq + 1) << 1;
        slot.stamp.store(stamp | 1, Ordering::Release);
        slot.ts_us
            .store(self.anchor.elapsed().as_micros() as u64, Ordering::Relaxed);
        slot.kind_code
            .store((kind as u64) << 8 | code as u64, Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.stamp.store(stamp, Ordering::Release);
    }

    /// Read back the retained events, oldest first. Torn slots (a
    /// writer was mid-update during the read) are skipped.
    pub fn events(&self) -> Vec<FlightEvent> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            let before = slot.stamp.load(Ordering::Acquire);
            if before == 0 || before & 1 == 1 {
                continue;
            }
            let ts_us = slot.ts_us.load(Ordering::Relaxed);
            let kind_code = slot.kind_code.load(Ordering::Relaxed);
            let a = slot.a.load(Ordering::Relaxed);
            let b = slot.b.load(Ordering::Relaxed);
            let after = slot.stamp.load(Ordering::Acquire);
            if after != before {
                continue; // torn: overwritten while we copied
            }
            let Some(kind) = EventKind::from_u8((kind_code >> 8) as u8) else {
                continue;
            };
            out.push(FlightEvent {
                seq: (before >> 1) - 1,
                ts_us,
                kind,
                code: (kind_code & 0xff) as u16,
                a,
                b,
            });
        }
        out.sort_unstable_by_key(|e| e.seq);
        out
    }

    /// The last `limit` retained events, oldest first.
    pub fn tail(&self, limit: usize) -> Vec<FlightEvent> {
        let mut ev = self.events();
        if ev.len() > limit {
            ev.drain(..ev.len() - limit);
        }
        ev
    }

    /// Render the retained events as JSONL (one event per line,
    /// trailing newline when non-empty).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            out.push_str(&e.to_json_line());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_come_back_in_sequence_order() {
        let r = FlightRecorder::new(8);
        r.record(EventKind::Admit, 0, 1, 3);
        r.record(EventKind::Dequeue, 0, 1, 120);
        r.record(EventKind::Complete, 0, 1, 900);
        let ev = r.events();
        assert_eq!(ev.len(), 3);
        assert_eq!(ev[0].kind, EventKind::Admit);
        assert_eq!(ev[1].kind, EventKind::Dequeue);
        assert_eq!(ev[2].kind, EventKind::Complete);
        assert_eq!(ev.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert!(ev.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
    }

    #[test]
    fn ring_keeps_only_the_newest() {
        let r = FlightRecorder::new(4);
        for i in 0..10u64 {
            r.record(EventKind::Admit, 0, i, 0);
        }
        let ev = r.events();
        assert_eq!(ev.len(), 4);
        assert_eq!(ev.iter().map(|e| e.a).collect::<Vec<_>>(), vec![6, 7, 8, 9]);
        assert_eq!(r.recorded(), 10);
        assert_eq!(r.tail(2).iter().map(|e| e.a).collect::<Vec<_>>(), vec![8, 9]);
    }

    #[test]
    fn capacity_zero_is_a_noop() {
        let r = FlightRecorder::new(0);
        r.record(EventKind::Panic, 22, 7, 0);
        assert!(r.events().is_empty());
        assert_eq!(r.recorded(), 0);
        assert_eq!(r.to_jsonl(), "");
    }

    #[test]
    fn jsonl_lines_have_the_stable_schema() {
        let r = FlightRecorder::new(2);
        r.record(EventKind::Panic, 22, 41, 1);
        let jsonl = r.to_jsonl();
        assert!(jsonl.starts_with("{\"seq\":0,\"ts_us\":"));
        assert!(jsonl.contains("\"event\":\"panic\",\"code\":22,\"req\":41,\"val\":1}"));
        assert!(jsonl.ends_with('\n'));
    }

    #[test]
    fn concurrent_writers_never_produce_corrupt_events() {
        let r = std::sync::Arc::new(FlightRecorder::new(64));
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let r = std::sync::Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..5_000u64 {
                        // Payload is derived from the operands so a reader
                        // can verify integrity: b must equal a * 3.
                        let a = t * 1_000_000 + i;
                        r.record(EventKind::Complete, 0, a, a.wrapping_mul(3));
                    }
                })
            })
            .collect();
        // A racing reader: every event it sees must be internally
        // consistent even while the ring is being overwritten.
        let reader = {
            let r = std::sync::Arc::clone(&r);
            std::thread::spawn(move || {
                for _ in 0..200 {
                    for e in r.events() {
                        assert_eq!(e.b, e.a.wrapping_mul(3), "torn slot escaped");
                        assert_eq!(e.kind, EventKind::Complete);
                    }
                }
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        reader.join().unwrap();
        assert_eq!(r.recorded(), 20_000);
        let ev = r.events();
        assert_eq!(ev.len(), 64);
        for e in &ev {
            assert_eq!(e.b, e.a.wrapping_mul(3));
        }
    }
}
