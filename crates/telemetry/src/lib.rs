//! Observability primitives for the Clara pipeline.
//!
//! Clara's pitch is performance *clarity*, so its own pipeline must not
//! be a black box: when a prediction misses the simulator by 10% or a
//! sweep cell times out, the developer needs to see where cycles, solver
//! nodes, and wall-clock went. This crate provides the vocabulary every
//! other layer speaks:
//!
//! * [`Sink`] — a pluggable span/counter collector. The
//!   [`Sink::Disabled`] variant is a no-op whose cost is one enum-tag
//!   branch per call site; the hot paths (solver pivots, per-packet
//!   simulation) never pay for observability they did not ask for. The
//!   benchmark suite asserts the disabled sink leaves results and
//!   runtimes unchanged.
//! * [`SolveStats`] — what the branch-and-bound ILP solver did: nodes
//!   explored, LP solves, simplex pivots, warm-start hits/misses,
//!   relaxation-memo hits, and the incumbent-objective trajectory.
//!   Deterministic by construction (keyed on node counts, never on
//!   wall-clock), so identical solves report identical stats.
//! * [`SimStats`] — what the NIC simulator observed: per-island thread
//!   occupancy, per-memory-level access counts, EMEM cache hit rate,
//!   accelerator queue high-water marks and HOL-blocking stalls,
//!   switch-fabric transfers, and drops broken down by cause. Packet
//!   conservation (`injected == completed + drops`) is checkable via
//!   [`SimStats::conserved`].
//! * [`TelemetryReport`] — the aggregate of all of the above, serialized
//!   as hand-rolled JSON in the same offline-friendly style as the sweep
//!   checkpoint code (the workspace takes no serde dependency).
//! * [`StageTimeline`] / [`ChromeTrace`] — an opt-in per-packet stage
//!   timeline that exports Chrome trace-event JSON, viewable in Perfetto
//!   or `chrome://tracing`.
//! * [`Histogram`] — a lock-free log-linear latency histogram (atomic
//!   buckets, mergeable, nearest-rank quantiles, ≤ 6.25 % relative
//!   error) for tail-latency reporting from the serving layer.
//! * [`RateWindows`] — trailing-window rate gauges (req/s, shed/s over
//!   1 s / 10 s / 60 s) over an epoch ring of atomic counters.
//! * [`FlightRecorder`] — a fixed-capacity lock-free ring of structured
//!   events (admit/shed/dequeue/complete/panic/...) with monotonic
//!   sequence numbers, dumped as JSONL around faults and drains.
//!
//! Telemetry is strictly *read-only* with respect to results: nothing in
//! this crate feeds back into solver or simulator decisions, so an
//! instrumented run is bit-identical to an uninstrumented one (asserted
//! by tests and the benchmark harness across the workspace).

pub mod flight;
pub mod hist;
pub mod rates;
pub mod report;
pub mod sink;
pub mod stats;
pub mod trace;

pub use flight::{EventKind, FlightEvent, FlightRecorder};
pub use hist::{HistSnapshot, HistSummary, Histogram};
pub use rates::RateWindows;
pub use report::{json_escape, TelemetryReport};
pub use sink::{MemorySink, Sink, SpanRecord};
pub use stats::{AccelStats, IslandStats, MemLevelStats, SimStats, SolveStats};
pub use trace::{ChromeTrace, StageSpan, StageTimeline, TraceEvent};
