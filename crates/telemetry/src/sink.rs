//! The span/counter sink: where pipeline phases report what they did.

use std::collections::BTreeMap;
use std::time::Instant;

/// One completed span: a named phase with wall-clock timing.
///
/// Spans time *wall-clock only* and never feed back into any
/// computation, so timing jitter cannot perturb results.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Phase name (e.g. `"frontend"`, `"ilp-solve"`, `"simulate"`).
    pub name: String,
    /// Start offset from sink creation, microseconds.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// Nesting depth at the time the span ran (1 = top level).
    pub depth: usize,
}

/// An in-memory span/counter collector.
#[derive(Debug)]
pub struct MemorySink {
    epoch: Instant,
    depth: usize,
    spans: Vec<SpanRecord>,
    counters: BTreeMap<String, u64>,
}

impl Default for MemorySink {
    fn default() -> Self {
        MemorySink {
            epoch: Instant::now(),
            depth: 0,
            spans: Vec::new(),
            counters: BTreeMap::new(),
        }
    }
}

/// A pluggable telemetry sink, enum-dispatched so the disabled case is
/// a compile-time-visible no-op: every method starts with a match on the
/// tag, and the [`Sink::Disabled`] arm does nothing and allocates
/// nothing. Hot paths can therefore call into the sink unconditionally.
#[derive(Debug, Default)]
pub enum Sink {
    /// Collect nothing; every call is a tag-check no-op.
    #[default]
    Disabled,
    /// Collect spans and counters in memory.
    Memory(MemorySink),
}

impl Sink {
    /// The no-op sink.
    pub fn disabled() -> Self {
        Sink::Disabled
    }

    /// A collecting sink with its epoch set to now.
    pub fn memory() -> Self {
        Sink::Memory(MemorySink::default())
    }

    /// Whether this sink records anything.
    pub fn is_enabled(&self) -> bool {
        matches!(self, Sink::Memory(_))
    }

    /// Run `f` inside a named span. Disabled sinks run `f` directly —
    /// no clock read, no allocation.
    #[inline]
    pub fn span<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        match self {
            Sink::Disabled => f(),
            Sink::Memory(m) => {
                let start = m.epoch.elapsed().as_micros() as u64;
                m.depth += 1;
                let depth = m.depth;
                let out = f();
                m.depth -= 1;
                let end = m.epoch.elapsed().as_micros() as u64;
                m.spans.push(SpanRecord {
                    name: name.to_string(),
                    start_us: start,
                    dur_us: end.saturating_sub(start),
                    depth,
                });
                out
            }
        }
    }

    /// Add `delta` to a named counter.
    #[inline]
    pub fn count(&mut self, name: &str, delta: u64) {
        match self {
            Sink::Disabled => {}
            Sink::Memory(m) => {
                *m.counters.entry(name.to_string()).or_insert(0) += delta;
            }
        }
    }

    /// Completed spans, in completion order (children before parents;
    /// sort by [`SpanRecord::start_us`] for chronological display).
    pub fn spans(&self) -> &[SpanRecord] {
        match self {
            Sink::Disabled => &[],
            Sink::Memory(m) => &m.spans,
        }
    }

    /// Counters, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        match self {
            Sink::Disabled => Vec::new(),
            Sink::Memory(m) => m.counters.iter().map(|(k, &v)| (k.clone(), v)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_runs_closures_and_records_nothing() {
        let mut sink = Sink::disabled();
        let v = sink.span("outer", || {
            sink_free_work();
            21 * 2
        });
        assert_eq!(v, 42);
        sink.count("things", 7);
        assert!(sink.spans().is_empty());
        assert!(sink.counters().is_empty());
        assert!(!sink.is_enabled());
    }

    fn sink_free_work() {}

    #[test]
    fn memory_sink_records_nested_spans_and_counters() {
        let mut sink = Sink::memory();
        let v = sink.span("outer", || 1 + 1);
        assert_eq!(v, 2);
        sink.count("a", 3);
        sink.count("a", 4);
        sink.count("b", 1);
        assert_eq!(sink.spans().len(), 1);
        assert_eq!(sink.spans()[0].name, "outer");
        assert_eq!(sink.spans()[0].depth, 1);
        assert_eq!(sink.counters(), vec![("a".into(), 7), ("b".into(), 1)]);
    }

    #[test]
    fn span_depth_tracks_nesting() {
        let mut sink = Sink::memory();
        // Nested spans need sequential re-borrows; emulate a pipeline
        // that opens phases one after another at two levels.
        sink.span("top", || ());
        sink.span("top2", || ());
        let spans = sink.spans();
        assert!(spans.iter().all(|s| s.depth == 1));
        assert!(spans[0].start_us <= spans[1].start_us);
    }
}
