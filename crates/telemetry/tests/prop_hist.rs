//! Property tests for the log-linear histogram: the serving layer's
//! tail-latency numbers are only trustworthy if the histogram conserves
//! every record, merges like a commutative monoid, reports monotone
//! quantiles, and stays inside its documented quantization error.

use clara_telemetry::hist::{bucket_floor, bucket_index, MAX_REL_ERROR};
use clara_telemetry::{HistSnapshot, Histogram};
use proptest::collection::vec;
use proptest::prelude::*;

/// Value streams spanning the full dynamic range: mixing small exact
/// values with values from arbitrary octaves exercises both halves of
/// the bucket scheme.
fn values() -> impl Strategy<Value = Vec<u64>> {
    vec(
        prop_oneof![
            0u64..64,                 // exact + first octaves
            1_000u64..10_000_000,     // µs-scale latencies
            any::<u64>(),             // anything, incl. u64::MAX
        ],
        0..256,
    )
}

/// Same, but guaranteed non-empty (the vendored proptest stub has no
/// `prop_assume`, so emptiness is excluded at generation time).
fn nonempty_values() -> impl Strategy<Value = Vec<u64>> {
    vec(
        prop_oneof![0u64..64, 1_000u64..10_000_000, any::<u64>()],
        1..256,
    )
}

fn build(vals: &[u64]) -> Histogram {
    let h = Histogram::new();
    for &v in vals {
        h.record(v);
    }
    h
}

fn snapshot(vals: &[u64]) -> HistSnapshot {
    build(vals).snapshot()
}

proptest! {
    /// Conservation: every record lands in exactly one bucket —
    /// `sum(buckets) == records`, and the tracked sum matches the
    /// wrapping sum of the inputs.
    #[test]
    fn recorded_count_is_conserved(vals in values()) {
        let s = snapshot(&vals);
        prop_assert_eq!(s.count(), vals.len() as u64);
        let bucket_total: u64 = s.nonzero_buckets().iter().map(|(_, n)| n).sum();
        prop_assert_eq!(bucket_total, vals.len() as u64);
        let expect_sum = vals.iter().fold(0u64, |acc, &v| acc.wrapping_add(v));
        prop_assert_eq!(s.sum(), expect_sum);
    }

    /// Merge is commutative: fold(a) ∪ fold(b) == fold(b) ∪ fold(a),
    /// and both equal the histogram of the concatenated stream.
    #[test]
    fn merge_is_commutative(a in values(), b in values()) {
        let ab = build(&a);
        ab.merge_from(&build(&b));
        let ba = build(&b);
        ba.merge_from(&build(&a));
        let both: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(ab.snapshot(), ba.snapshot());
        prop_assert_eq!(ab.snapshot(), snapshot(&both));
    }

    /// Merge is associative: (a ∪ b) ∪ c == a ∪ (b ∪ c).
    #[test]
    fn merge_is_associative(a in values(), b in values(), c in values()) {
        let left = build(&a);
        left.merge_from(&build(&b));
        left.merge_from(&build(&c));
        let bc = build(&b);
        bc.merge_from(&build(&c));
        let right = build(&a);
        right.merge_from(&bc);
        prop_assert_eq!(left.snapshot(), right.snapshot());
    }

    /// Quantiles are monotone in q, bracketed by [min-bucket, max], and
    /// q=1 is the exact max.
    #[test]
    fn quantiles_are_monotone(vals in nonempty_values()) {
        let s = snapshot(&vals);
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0];
        let mut last = 0u64;
        for (i, &q) in qs.iter().enumerate() {
            let v = s.quantile(q);
            prop_assert!(i == 0 || v >= last, "q={q}: {v} < {last}");
            prop_assert!(v <= s.max());
            last = v;
        }
        prop_assert_eq!(s.quantile(1.0), *vals.iter().max().unwrap());
    }

    /// The bucket representative (floor) under-reports a value by at
    /// most the documented relative error: floor <= v and
    /// v - floor <= MAX_REL_ERROR * v (exact below 2^SUB_BITS).
    #[test]
    fn bucket_error_is_within_the_documented_bound(v in any::<u64>()) {
        let floor = bucket_floor(bucket_index(v));
        prop_assert!(floor <= v, "floor {floor} above value {v}");
        let err = v - floor;
        // Integer form of err <= v/16 avoids f64 precision loss at the
        // top of the u64 range; the bound itself is MAX_REL_ERROR.
        prop_assert!(
            (err as f64) <= MAX_REL_ERROR * (v as f64) + f64::EPSILON,
            "value {v}: floor {floor}, err {err} exceeds {MAX_REL_ERROR}"
        );
        prop_assert!(err <= v / 16, "value {v}: err {err} > v/16");
    }

    /// Every reported quantile is the floor of a bucket some recorded
    /// value occupies — within 6.25 % below an actually-observed value.
    #[test]
    fn quantiles_are_near_observed_values(vals in nonempty_values(), q in 0.0f64..1.0) {
        let s = snapshot(&vals);
        let got = s.quantile(q);
        let witnessed = vals.iter().any(|&v| {
            let f = bucket_floor(bucket_index(v));
            got == f || got == f.min(s.max())
        });
        prop_assert!(witnessed, "quantile {got} matches no recorded bucket");
    }
}
