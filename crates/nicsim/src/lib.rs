//! A cycle-cost, discrete-event SmartNIC simulator — Clara's ground-truth
//! execution substrate.
//!
//! The paper validates Clara's predictions against a physical Netronome
//! Agilio CX 40 GbE SmartNIC. This reproduction has no NIC, so this crate
//! implements a mechanistically faithful stand-in, parameterized by an
//! [`clara_lnic::Lnic`] profile:
//!
//! * **NPU islands** — general cores with N hardware threads each; an
//!   incoming packet is bound to a single thread and runs to completion.
//! * **Memory hierarchy** — LMEM / per-island CTM / IMEM / EMEM with the
//!   paper's latencies, a set-associative LRU cache in front of the EMEM,
//!   NUMA weights for remote-island CTM access, and bulk per-byte costs
//!   for payload streaming.
//! * **Packet residence** — packets ≤ 1 kB live in the CTM of their
//!   island; the tails of larger packets spill to EMEM (§3.2).
//! * **Accelerators** — checksum / crypto / flow-cache / LPM engines as
//!   single-server queues with base + per-byte service curves; contention
//!   produces head-of-line blocking.
//! * **Flow cache** — a hardware exact-match table in SRAM; hits bypass
//!   the software path, misses fall back to the table's backing memory
//!   and install the flow.
//! * **Switching hubs** — fixed ingress/egress traversal plus queueing
//!   when all threads are busy.
//!
//! A *ported NF* is expressed as a [`NicProgram`]: stages of micro-ops
//! with explicit table placements — exactly the decisions a human porter
//! makes (which memory holds the flow table, whether the checksum uses
//! the accelerator, whether the flow cache fronts the LPM table).
//!
//! # Example
//!
//! ```
//! use clara_lnic::profiles;
//! use clara_nicsim::{simulate, MicroOp, NicProgram, Stage, StageUnit};
//! use clara_workload::TraceGenerator;
//!
//! let nic = profiles::netronome_agilio_cx40();
//! let prog = NicProgram {
//!     name: "echo".into(),
//!     tables: vec![],
//!     stages: vec![Stage {
//!         name: "touch".into(),
//!         unit: StageUnit::Npu,
//!         ops: vec![MicroOp::ParseHeader, MicroOp::MetadataMod { count: 2 }],
//!     }],
//! };
//! let trace = TraceGenerator::new(1).packets(500).generate();
//! let result = simulate(&nic, &prog, &trace).unwrap();
//! assert_eq!(result.completed, 500);
//! assert!(result.avg_latency_cycles > 150.0); // at least the parse cost
//! ```

mod batch;
pub mod costcache;
pub mod engine;
pub mod fault;
pub mod memory;
pub mod program;
pub mod watchdog;

pub use clara_lnic::AccelKind;
pub use clara_telemetry::{SimStats, StageTimeline};
pub use costcache::CostCache;
pub use engine::{
    simulate, simulate_configured, simulate_instrumented, simulate_streamed,
    simulate_streamed_instrumented, simulate_supervised, simulate_with_faults, SimConfig, SimError,
    SimInstruments, SimResult, SimScratch,
};
pub use fault::{FaultPlan, TRUNCATED_PAYLOAD_BYTES};
pub use memory::{Cache, MemorySim};
pub use program::{BytesSpec, MicroOp, NicProgram, Stage, StageUnit, TableCfg};
pub use watchdog::Watchdog;
