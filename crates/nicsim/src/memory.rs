//! Memory-system simulation: set-associative LRU caches and a region
//! allocator resolving accesses to cycle costs.

use clara_lnic::{EdgeKind, Lnic, MemId, UnitId};

/// A set-associative cache with LRU replacement.
///
/// Tags are full line addresses; sets are small move-to-front vectors
/// (ways ≤ 16 in every profile), which is faster than timestamp LRU at
/// these sizes.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: Vec<Vec<u64>>,
    line: usize,
    ways: usize,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Build a cache with `capacity` bytes, `line`-byte lines, and
    /// `ways` associativity. Set count is rounded up to a power of two.
    pub fn new(capacity: usize, line: usize, ways: usize) -> Self {
        assert!(line.is_power_of_two(), "line size must be a power of two");
        assert!(ways >= 1);
        let lines = (capacity / line).max(1);
        let sets = (lines / ways).max(1).next_power_of_two();
        Cache {
            sets: vec![Vec::with_capacity(ways); sets],
            line,
            ways,
            hits: 0,
            misses: 0,
        }
    }

    /// Access the line containing `addr`; returns true on hit. Misses
    /// install the line, evicting LRU.
    pub fn access(&mut self, addr: u64) -> bool {
        let line_addr = addr / self.line as u64;
        let set = (line_addr as usize) & (self.sets.len() - 1);
        let set = &mut self.sets[set];
        if let Some(pos) = set.iter().position(|&t| t == line_addr) {
            // Move to front (MRU).
            let t = set.remove(pos);
            set.insert(0, t);
            self.hits += 1;
            true
        } else {
            if set.len() == self.ways {
                set.pop();
            }
            set.insert(0, line_addr);
            self.misses += 1;
            false
        }
    }

    /// Line size in bytes.
    pub fn line(&self) -> usize {
        self.line
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Invalidate every line (hit/miss counters are preserved): what a
    /// hostile co-tenant's working set does to ours.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Hit ratio so far (0 if no accesses).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Simulated memory system over an LNIC: per-region caches, a bump
/// allocator for table placement, and access-cost resolution.
///
/// All topology lookups — which (unit, region) edge applies, which
/// region has a cache — are resolved to plain vector indices at
/// construction, so [`MemorySim::access`] is straight array arithmetic.
/// The seed scanned the LNIC edge list (hundreds of edges on the
/// Netronome profile) on *every* access, which dominated whole-trace
/// simulations with per-byte payload loops.
#[derive(Debug)]
pub struct MemorySim {
    /// Cache per region that declares one, indexed by `MemId.0`.
    caches: Vec<Option<Cache>>,
    /// Cache hit latency per region (0 where there is no cache).
    hit_latency: Vec<u64>,
    /// Bump-allocation cursor per region.
    cursor: Vec<u64>,
    /// Raw access latency for every (unit, region) pair, unit-major:
    /// the region's base latency, plus the extra from the first
    /// matching `MemAccess` edge (same precedence as
    /// [`Lnic::try_access_latency`], which scans edges in order).
    raw: Vec<u64>,
    /// Bulk streaming cost per byte, per region.
    bulk_per_byte: Vec<f64>,
    /// Accesses issued per region (telemetry; never feeds back into
    /// costs).
    accesses: Vec<u64>,
    n_mems: usize,
}

impl MemorySim {
    /// Initialize caches and the latency matrix from the LNIC.
    pub fn new(nic: &Lnic) -> Self {
        let n_mems = nic.memories().len();
        let n_units = nic.units().len();
        let mut caches: Vec<Option<Cache>> = Vec::with_capacity(n_mems);
        let mut hit_latency = vec![0u64; n_mems];
        let mut bulk_per_byte = vec![0.0; n_mems];
        let mut raw = vec![0u64; n_units * n_mems];
        for (i, m) in nic.memories().iter().enumerate() {
            caches.push(m.cache.map(|c| Cache::new(c.capacity, c.line, c.ways)));
            if let Some(c) = m.cache {
                hit_latency[i] = c.hit_latency;
            }
            bulk_per_byte[i] = m.bulk_per_byte;
            for u in 0..n_units {
                raw[u * n_mems + i] = m.latency;
            }
        }
        let mut filled = vec![false; n_units * n_mems];
        for e in nic.edges() {
            if let EdgeKind::MemAccess { unit, mem, extra_latency } = e.kind {
                let slot = unit.0 * n_mems + mem.0;
                if !filled[slot] {
                    filled[slot] = true;
                    raw[slot] = nic.memories()[mem.0].latency + extra_latency;
                }
            }
        }
        MemorySim {
            caches,
            hit_latency,
            cursor: vec![0; n_mems],
            raw,
            bulk_per_byte,
            accesses: vec![0; n_mems],
            n_mems,
        }
    }

    /// Allocate `bytes` in `region`, returning the base address.
    /// Addresses are region-local; regions never alias.
    pub fn alloc(&mut self, region: MemId, bytes: u64) -> u64 {
        let cur = &mut self.cursor[region.0];
        let base = *cur;
        *cur += bytes.max(1);
        base
    }

    /// Raw (uncached) latency from `unit` to `region`, edge extras
    /// included — the pre-resolved equivalent of
    /// `nic.try_access_latency(unit, region).unwrap_or(region.latency)`.
    #[inline]
    pub fn raw_latency(&self, unit: UnitId, region: MemId) -> u64 {
        self.raw[unit.0 * self.n_mems + region.0]
    }

    /// Bulk streaming cost per byte of `region`.
    #[inline]
    pub fn bulk_per_byte(&self, region: MemId) -> f64 {
        self.bulk_per_byte[region.0]
    }

    /// Cost in cycles of accessing `bytes` at `addr` in `region`, issued
    /// from `unit`. Walks cache lines where the region is cached; each
    /// line is an independent hit/miss.
    pub fn access(&mut self, unit: UnitId, region: MemId, addr: u64, bytes: u64) -> u64 {
        self.accesses[region.0] += 1;
        let raw = self.raw[unit.0 * self.n_mems + region.0];
        match &mut self.caches[region.0] {
            None => {
                // One transaction covers up to a 64-byte burst; larger
                // transfers stream at the region's bulk rate.
                let extra = bytes.saturating_sub(64);
                raw + (self.bulk_per_byte[region.0] * extra as f64).round() as u64
            }
            Some(cache) => {
                let hit_lat = self.hit_latency[region.0];
                let line = cache.line() as u64;
                let first = addr / line;
                let last = (addr + bytes.max(1) - 1) / line;
                let mut total = 0;
                for l in first..=last {
                    total += if cache.access(l * line) { hit_lat } else { raw };
                }
                total
            }
        }
    }

    /// Cache statistics of a region, if it has a cache.
    pub fn cache_stats(&self, region: MemId) -> Option<(u64, u64)> {
        self.caches[region.0].as_ref().map(|c| c.stats())
    }

    /// Accesses issued against `region` so far. Counts *computed*
    /// accesses: stage-cost memoization in the engine replays costs
    /// without re-touching the memory model, so memoized runs report
    /// fewer accesses than [`crate::SimConfig::exact`] runs.
    pub fn access_count(&self, region: MemId) -> u64 {
        self.accesses[region.0]
    }

    /// Whether `region` currently has a cache in front of it. Accesses to
    /// uncached regions are history- and address-independent (raw latency
    /// plus the bulk rate), which is what makes them memoizable by
    /// signature in the engine.
    #[inline]
    pub fn has_cache(&self, region: MemId) -> bool {
        self.caches[region.0].is_some()
    }

    /// Remove `region`'s cache entirely (fault injection: a disabled
    /// cache controller). Accesses then pay the raw region latency.
    pub fn disable_cache(&mut self, region: MemId) {
        self.caches[region.0] = None;
        self.hit_latency[region.0] = 0;
    }

    /// Flush `region`'s cache, if it has one (fault injection: thrash).
    pub fn flush_cache(&mut self, region: MemId) {
        if let Some(c) = &mut self.caches[region.0] {
            c.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clara_lnic::profiles;

    #[test]
    fn cache_hits_after_install() {
        let mut c = Cache::new(1024, 64, 2);
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line
        assert_eq!(c.stats(), (2, 2));
    }

    #[test]
    fn lru_evicts_oldest() {
        // 2 sets x 2 ways of 64-byte lines (256 B total).
        let mut c = Cache::new(256, 64, 2);
        // Set 0 gets lines 0, 2, 4 (line_addr % 2 == 0).
        c.access(0);
        c.access(2 * 64);
        c.access(4 * 64); // evicts line 0
        assert!(!c.access(0), "line 0 should have been evicted");
        assert!(c.access(4 * 64));
    }

    #[test]
    fn working_set_behavior() {
        // A working set within capacity converges to ~100% hits; one that
        // is 2x capacity keeps missing.
        let mut small = Cache::new(4096, 64, 4);
        for _round in 0..4 {
            for i in 0..64u64 {
                small.access(i * 64);
            }
        }
        assert!(small.hit_ratio() > 0.7, "ratio {}", small.hit_ratio());

        let mut big = Cache::new(4096, 64, 4);
        for _round in 0..4 {
            for i in 0..128u64 {
                big.access(i * 64);
            }
        }
        assert!(big.hit_ratio() < 0.2, "ratio {}", big.hit_ratio());
    }

    #[test]
    fn memory_sim_uncached_region_flat_cost() {
        let nic = profiles::netronome_agilio_cx40();
        let mut mem = MemorySim::new(&nic);
        let npu = nic.unit_named("npu0_0").unwrap();
        let imem = nic.memory_named("imem").unwrap();
        assert_eq!(mem.access(npu, imem, 0, 8), 250);
        assert_eq!(mem.access(npu, imem, 0, 8), 250); // no cache: same
    }

    #[test]
    fn memory_sim_emem_cache_effect() {
        let nic = profiles::netronome_agilio_cx40();
        let mut mem = MemorySim::new(&nic);
        let npu = nic.unit_named("npu0_0").unwrap();
        let emem = nic.memory_named("emem").unwrap();
        let cold = mem.access(npu, emem, 4096, 8);
        let warm = mem.access(npu, emem, 4096, 8);
        assert_eq!(cold, 500);
        assert_eq!(warm, 150);
    }

    #[test]
    fn multi_line_access_sums_lines() {
        let nic = profiles::netronome_agilio_cx40();
        let mut mem = MemorySim::new(&nic);
        let npu = nic.unit_named("npu0_0").unwrap();
        let emem = nic.memory_named("emem").unwrap();
        // 256 bytes = 4 lines, all cold.
        assert_eq!(mem.access(npu, emem, 0, 256), 4 * 500);
        // Warm now.
        assert_eq!(mem.access(npu, emem, 0, 256), 4 * 150);
    }

    #[test]
    fn allocator_is_disjoint() {
        let nic = profiles::netronome_agilio_cx40();
        let mut mem = MemorySim::new(&nic);
        let emem = nic.memory_named("emem").unwrap();
        let a = mem.alloc(emem, 100);
        let b = mem.alloc(emem, 100);
        assert!(b >= a + 100);
    }

    #[test]
    fn remote_ctm_numa_cost() {
        let nic = profiles::netronome_agilio_cx40();
        let mut mem = MemorySim::new(&nic);
        let npu = nic.unit_named("npu0_0").unwrap();
        let own = nic.memory_named("ctm0").unwrap();
        let remote = nic.memory_named("ctm1").unwrap();
        assert!(mem.access(npu, remote, 0, 8) > mem.access(npu, own, 0, 8));
    }
}
