//! Run-away protection for the simulator: cycle caps and a wall-clock
//! deadline that convert "the simulation will effectively never finish"
//! into a counted, reported error.
//!
//! The event loop is untrusted-input-adjacent: a program built from a
//! hostile or buggy lowering can ask for astronomically expensive work
//! (e.g. a [`crate::program::MicroOp::StreamPayload`] whose
//! `loop_overhead × payload_len` product approaches `u64::MAX`). Without
//! a watchdog the run either spins for hours or silently wraps its cycle
//! arithmetic; with one, the first packet to blow its cycle budget ends
//! the run with [`crate::SimError::Watchdog`] naming the packet, stage,
//! and limit.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Cycle and wall-clock limits for one simulation run.
///
/// The defaults are far above anything a legitimate program reaches
/// (the paper-eval NFs cost thousands of cycles per packet, the default
/// per-packet cap is 10^9) so existing results are bit-unchanged, while
/// adversarial inputs trip the cap in the first packet.
#[derive(Debug, Clone, Default)]
pub struct Watchdog {
    /// Maximum simulated cycles any one packet may consume across all
    /// stages. `None` = the built-in default cap.
    pub max_cycles_per_packet: Option<u64>,
    /// Maximum simulated busy cycles for the whole run.
    /// `None` = the built-in default cap.
    pub max_total_cycles: Option<u64>,
    /// Wall-clock deadline; checked periodically (not per packet).
    pub deadline: Option<Instant>,
    /// Cooperative cancel token; checked with the deadline.
    pub cancel: Option<Arc<AtomicBool>>,
}

/// Built-in per-packet cycle cap (≈ 1.25 s of simulated time at 0.8 GHz
/// for a *single packet* — orders of magnitude past any real NF).
pub const DEFAULT_PACKET_CYCLES: u64 = 1_000_000_000;

/// Built-in whole-run busy-cycle cap.
pub const DEFAULT_TOTAL_CYCLES: u64 = 1 << 50;

/// How often (in packets) the wall-clock deadline is polled.
pub(crate) const DEADLINE_STRIDE: usize = 1024;

impl Watchdog {
    /// The default caps, no wall-clock deadline.
    pub fn new() -> Self {
        Watchdog::default()
    }

    /// Effective per-packet cap.
    pub fn packet_limit(&self) -> u64 {
        self.max_cycles_per_packet.unwrap_or(DEFAULT_PACKET_CYCLES)
    }

    /// Effective whole-run cap.
    pub fn total_limit(&self) -> u64 {
        self.max_total_cycles.unwrap_or(DEFAULT_TOTAL_CYCLES)
    }

    /// Whether the wall-clock budget is spent or the run was cancelled.
    pub fn expired(&self) -> bool {
        if let Some(c) = &self.cancel {
            if c.load(Ordering::Relaxed) {
                return true;
            }
        }
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn defaults_are_generous_and_never_expired() {
        let wd = Watchdog::new();
        assert_eq!(wd.packet_limit(), DEFAULT_PACKET_CYCLES);
        assert_eq!(wd.total_limit(), DEFAULT_TOTAL_CYCLES);
        assert!(!wd.expired());
    }

    #[test]
    fn past_deadline_expires() {
        let wd = Watchdog { deadline: Some(Instant::now()), ..Watchdog::new() };
        assert!(wd.expired());
        let wd = Watchdog {
            deadline: Some(Instant::now() + Duration::from_secs(3600)),
            ..Watchdog::new()
        };
        assert!(!wd.expired());
    }

    #[test]
    fn cancel_token_expires_without_clock() {
        let token = Arc::new(AtomicBool::new(false));
        let wd = Watchdog { cancel: Some(Arc::clone(&token)), ..Watchdog::new() };
        assert!(!wd.expired());
        token.store(true, Ordering::Relaxed);
        assert!(wd.expired());
    }
}
