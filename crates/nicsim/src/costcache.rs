//! Shared, concurrency-safe stage-cost caches.
//!
//! The per-run memo tables in [`crate::SimScratch`] capture one run's
//! pure stage costs and are cleared on the next run: every sweep cell,
//! every validate worker, and every `clara serve` request re-pays the
//! cost of the expensive signatures (a 1400-byte DFA payload walk is
//! ~1400 memory-model accesses *per payload length*). This module hoists
//! that memo into a [`CostCache`] that outlives runs and is safe to
//! share across threads:
//!
//! - The cache is keyed by a **run fingerprint** — a compact token
//!   stream encoding every input a pure stage cost can read, *after*
//!   fault application (unit cost models and FPUs, post-fault raw
//!   latencies and bulk rates of every reachable region, cache presence
//!   per region, table geometry, program stages, per-stage fault
//!   stalls). Equal fingerprints imply equal pure costs for every
//!   `(stage, unit[, payload_len])` signature, so a view may be shared
//!   across sweep cells, fan-out workers, and serve sessions for the
//!   same `(NF, NIC, faults)`. The encoding is binary (`u64` tokens in
//!   a fixed traversal order, length-prefixed), not a formatted string:
//!   fingerprints are built once per run on the sweep hot path, and
//!   `fmt` machinery there costs more than the whole batched kernel.
//! - Each fingerprint interns one [`CostView`]: sharded read-mostly
//!   maps from hash-consed signatures (`stage` and `unit` packed into
//!   one word, payload length alongside) to the cost the exact scalar
//!   path computed. Lookups take a shard read lock; inserts are benign
//!   to race because every writer computes the identical value from the
//!   identical pure inputs — last write wins with the same bits.
//! - Hit/miss counters are atomics on the cache, bumped once per run
//!   (not per lookup) with that run's tallies; the same tallies land in
//!   `SimStats::{memo_hits, memo_misses}` for instrumented runs.
//!
//! Nothing here weakens the fidelity contract. The shared path only
//! *replays* costs that the exact `stage_cost` produced under the same
//! fingerprint, exactly as the per-run memo does; the per-run tables
//! remain the escape hatch when no cache is attached, and
//! [`crate::SimConfig::exact`] bypasses both.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Shard count per view. Payload-pure signatures are sharded by payload
/// length, so concurrent sweep cells costing different packet sizes
/// rarely contend on one lock.
const SHARDS: usize = 8;

/// One fingerprint's cost tables.
///
/// Obtained from `CostCache::view`; the engine resolves a view once
/// per run and then consults it only when the run-local memo misses.
pub struct CostView {
    shards: Vec<RwLock<ViewShard>>,
}

#[derive(Default)]
struct ViewShard {
    /// `(stage, unit)` signatures, packed `stage << 32 | unit`.
    fixed: HashMap<u64, u64>,
    /// `(stage, unit, payload_len)` signatures.
    payload: HashMap<(u64, u64), u64>,
}

#[inline]
fn pack(si: u32, unit: u32) -> u64 {
    (u64::from(si) << 32) | u64::from(unit)
}

impl CostView {
    fn new() -> Self {
        CostView { shards: (0..SHARDS).map(|_| RwLock::new(ViewShard::default())).collect() }
    }

    #[inline]
    fn shard_of(&self, key: u64) -> &RwLock<ViewShard> {
        &self.shards[(key as usize) & (SHARDS - 1)]
    }

    /// Cost of a `Fixed` signature, if some run already computed it.
    pub(crate) fn get_fixed(&self, si: u32, unit: u32) -> Option<u64> {
        let key = pack(si, unit);
        self.shard_of(key).read().ok()?.fixed.get(&key).copied()
    }

    pub(crate) fn put_fixed(&self, si: u32, unit: u32, cost: u64) {
        let key = pack(si, unit);
        if let Ok(mut s) = self.shard_of(key).write() {
            s.fixed.insert(key, cost);
        }
    }

    /// Cost of a `PayloadPure` signature, if some run already computed it.
    pub(crate) fn get_payload(&self, si: u32, unit: u32, len: u64) -> Option<u64> {
        self.shard_of(len).read().ok()?.payload.get(&(pack(si, unit), len)).copied()
    }

    pub(crate) fn put_payload(&self, si: u32, unit: u32, len: u64, cost: u64) {
        if let Ok(mut s) = self.shard_of(len).write() {
            s.payload.insert((pack(si, unit), len), cost);
        }
    }

    /// Total signatures cached in this view (tests and stats).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().map(|s| s.fixed.len() + s.payload.len()).unwrap_or(0))
            .sum()
    }

    /// Whether the view holds no signatures yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A shared stage-cost cache: fingerprints interned to [`CostView`]s,
/// plus cache-wide hit/miss atomics.
///
/// Create one per sweep (donated to every worker, like the ILP warm
/// starts) or one per serve session (shared across requests); attach it
/// to a [`crate::SimScratch`] with
/// [`crate::SimScratch::attach_cost_cache`].
#[derive(Default)]
pub struct CostCache {
    views: RwLock<HashMap<Vec<u64>, Arc<CostView>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CostCache {
    /// An empty cache.
    pub fn new() -> Self {
        CostCache::default()
    }

    /// Intern `fingerprint`, returning its view (creating it on first
    /// sight). Keys are the full fingerprint token stream, not its
    /// hash, so distinct run configurations can never alias a view.
    pub(crate) fn view(&self, fingerprint: &[u64]) -> Arc<CostView> {
        if let Ok(views) = self.views.read() {
            if let Some(v) = views.get(fingerprint) {
                return Arc::clone(v);
            }
        }
        let mut views = match self.views.write() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        };
        Arc::clone(
            views.entry(fingerprint.to_vec()).or_insert_with(|| Arc::new(CostView::new())),
        )
    }

    /// Fold one run's shared-layer resolution tallies into the cache-wide
    /// counters.
    pub(crate) fn record(&self, hits: u64, misses: u64) {
        if hits > 0 {
            self.hits.fetch_add(hits, Ordering::Relaxed);
        }
        if misses > 0 {
            self.misses.fetch_add(misses, Ordering::Relaxed);
        }
    }

    /// Shared-layer hits since creation (a hit is a run-local memo miss
    /// answered by the cache — per-packet replays within one run are not
    /// counted, so this measures *cross-run* reuse).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Shared-layer misses since creation (signatures that had to be
    /// computed by the exact path before being published).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Hit rate over all shared-layer resolutions (0 when none yet).
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits(), self.misses());
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Number of interned fingerprint views.
    pub fn views(&self) -> usize {
        self.views.read().map(|v| v.len()).unwrap_or(0)
    }

    /// Total cached signatures across all views.
    pub fn len(&self) -> usize {
        self.views.read().map(|v| v.values().map(|view| view.len()).sum()).unwrap_or(0)
    }

    /// Whether no signatures are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every view (quarantine: a panicking run may have left a
    /// half-poisoned process; costs are cheap to recompute, so evict
    /// rather than trust). Hit/miss counters are preserved — they
    /// describe history, not contents.
    pub fn purge(&self) {
        if let Ok(mut views) = self.views.write() {
            views.clear();
        }
    }
}

impl fmt::Debug for CostCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CostCache")
            .field("views", &self.views())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_interning_and_purge() {
        let cache = CostCache::new();
        let a = cache.view(&[1, 2, 3]);
        let a2 = cache.view(&[1, 2, 3]);
        let b = cache.view(&[1, 2, 4]);
        assert!(Arc::ptr_eq(&a, &a2));
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.views(), 2);

        a.put_fixed(0, 3, 42);
        a.put_payload(1, 3, 700, 99);
        assert_eq!(a.get_fixed(0, 3), Some(42));
        assert_eq!(a.get_payload(1, 3, 700), Some(99));
        assert_eq!(a.get_payload(1, 3, 701), None);
        assert_eq!(cache.len(), 2);

        cache.record(5, 2);
        cache.purge();
        assert_eq!(cache.views(), 0);
        assert_eq!(cache.len(), 0);
        // Counters describe history and survive the purge.
        assert_eq!((cache.hits(), cache.misses()), (5, 2));
        assert!((cache.hit_rate() - 5.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn distinct_fingerprints_never_alias() {
        let cache = CostCache::new();
        cache.view(&[7]).put_fixed(0, 0, 1);
        assert_eq!(cache.view(&[8]).get_fixed(0, 0), None);
        // A prefix is a distinct key, not an alias.
        assert_eq!(cache.view(&[7, 0]).get_fixed(0, 0), None);
    }

    #[test]
    fn concurrent_inserts_agree() {
        let cache = Arc::new(CostCache::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let cache = Arc::clone(&cache);
                s.spawn(move || {
                    let v = cache.view(&[42]);
                    for len in 0..256u64 {
                        // Every writer computes the same pure value.
                        v.put_payload(0, 0, len, len * 3);
                    }
                });
            }
        });
        let v = cache.view(&[42]);
        for len in 0..256u64 {
            assert_eq!(v.get_payload(0, 0, len), Some(len * 3));
        }
        assert_eq!(cache.views(), 1);
    }
}
