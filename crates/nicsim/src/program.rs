//! Ported-program representation: what a human port of an NF to the
//! SmartNIC looks like to the simulator.

/// Where a stage executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageUnit {
    /// A general-purpose NPU core (thread-bound, run-to-completion).
    Npu,
    /// A domain-specific accelerator; the stage's ops must be
    /// [`MicroOp::AccelCall`]s.
    Accel(clara_lnic::AccelKind),
}

/// Sizes an accelerator call or stream operates over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BytesSpec {
    /// The packet's transport payload length.
    Payload,
    /// Payload plus all headers (full frame).
    Frame,
    /// A fixed byte count.
    Fixed(u64),
}

impl BytesSpec {
    /// Resolve against a concrete packet.
    pub fn resolve(&self, payload_len: u64, wire_len: u64) -> u64 {
        match self {
            BytesSpec::Payload => payload_len,
            BytesSpec::Frame => wire_len,
            BytesSpec::Fixed(n) => *n,
        }
    }
}

/// Configuration of one NF state table on the NIC.
#[derive(Debug, Clone, PartialEq)]
pub struct TableCfg {
    /// Name (matches the NF source's state name by convention).
    pub name: String,
    /// Memory region holding the table, by LNIC region name
    /// (`"ctm0"`, `"imem"`, `"emem"`, ...).
    pub mem: String,
    /// Bytes per entry.
    pub entry_bytes: usize,
    /// Number of entries / rules / buckets.
    pub entries: u64,
    /// Whether the hardware flow-cache engine fronts this table
    /// (exact-match hits bypass the software path).
    pub use_flow_cache: bool,
}

impl TableCfg {
    /// Total footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.entry_bytes * self.entries as usize
    }
}

/// One micro-operation of a ported stage.
///
/// Costs are resolved against the LNIC profile at simulation time; table
/// indices refer to [`NicProgram::tables`].
#[derive(Debug, Clone, PartialEq)]
pub enum MicroOp {
    /// Fixed ALU work in cycles.
    Compute {
        /// Cycle count.
        cycles: u64,
    },
    /// Parse packet headers (CTM → local memory copy on NPUs).
    ParseHeader,
    /// Packet metadata / header-field modifications.
    MetadataMod {
        /// Number of modifications.
        count: u64,
    },
    /// Flow-hash computations.
    Hash {
        /// Number of hashes.
        count: u64,
    },
    /// Hashed exact-match lookup in a table (one bucket access keyed by
    /// the packet's flow).
    TableLookup {
        /// Index into [`NicProgram::tables`].
        table: usize,
    },
    /// Insert/update of the packet's flow entry.
    TableWrite {
        /// Index into [`NicProgram::tables`].
        table: usize,
    },
    /// Read-modify-write of a counter bucket keyed by the flow.
    CounterUpdate {
        /// Index into [`NicProgram::tables`].
        table: usize,
    },
    /// Full sequential match/action scan over a rule table (the naive
    /// software LPM: every rule checked for longest match).
    LinearScan {
        /// Index into [`NicProgram::tables`].
        table: usize,
    },
    /// Byte-wise pass over the payload: stream compute + packet-residence
    /// reads, plus an optional per-byte random access into `table`
    /// (a DPI automaton's transition table).
    StreamPayload {
        /// Automaton/transition table, if any.
        table: Option<usize>,
        /// Extra per-byte compute (the scan loop's index arithmetic,
        /// comparisons, and branch — zero for a pure data pump).
        loop_overhead: u64,
    },
    /// Software checksum on the NPU: streams header+payload from the
    /// packet's residence.
    ChecksumSw,
    /// A call serviced by this stage's accelerator (only valid in
    /// [`StageUnit::Accel`] stages).
    AccelCall {
        /// Bytes the accelerator processes.
        bytes: BytesSpec,
    },
    /// Floating-point operations (software-emulated on FPU-less NPUs).
    FloatOps {
        /// Number of float operations.
        count: u64,
    },
}

/// One run-to-completion stage of the ported program.
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    /// Stage name (for per-stage reporting).
    pub name: String,
    /// Execution unit.
    pub unit: StageUnit,
    /// Micro-ops in order.
    pub ops: Vec<MicroOp>,
}

/// A complete ported NF.
#[derive(Debug, Clone, PartialEq)]
pub struct NicProgram {
    /// Program name.
    pub name: String,
    /// Stages in packet order.
    pub stages: Vec<Stage>,
    /// State tables with placements.
    pub tables: Vec<TableCfg>,
}

impl NicProgram {
    /// Validate internal consistency (table indices in range, accelerator
    /// stages only carry accelerator calls).
    pub fn validate(&self) -> Result<(), String> {
        for stage in &self.stages {
            for op in &stage.ops {
                let table = match op {
                    MicroOp::TableLookup { table }
                    | MicroOp::TableWrite { table }
                    | MicroOp::CounterUpdate { table }
                    | MicroOp::LinearScan { table } => Some(*table),
                    MicroOp::StreamPayload { table, .. } => *table,
                    _ => None,
                };
                if let Some(t) = table {
                    if t >= self.tables.len() {
                        return Err(format!(
                            "stage `{}` references table {t} but only {} exist",
                            stage.name,
                            self.tables.len()
                        ));
                    }
                }
                match (&stage.unit, op) {
                    (StageUnit::Accel(_), MicroOp::AccelCall { .. }) => {}
                    (StageUnit::Accel(k), other) => {
                        return Err(format!(
                            "accelerator stage `{}` ({k}) contains non-accel op {other:?}",
                            stage.name
                        ))
                    }
                    (StageUnit::Npu, MicroOp::AccelCall { .. }) => {
                        return Err(format!(
                            "NPU stage `{}` contains an AccelCall",
                            stage.name
                        ))
                    }
                    (StageUnit::Npu, _) => {}
                }
            }
        }
        Ok(())
    }

    /// Total declared table footprint in bytes.
    pub fn state_bytes(&self) -> usize {
        self.tables.iter().map(|t| t.size_bytes()).sum()
    }

    /// Accelerator engines the stages call directly. Flow-cache fronting
    /// of tables is *not* included: losing the flow cache degrades
    /// lookups to the backing memory rather than making the program
    /// unrunnable.
    pub fn required_accels(&self) -> Vec<clara_lnic::AccelKind> {
        let mut kinds = Vec::new();
        for stage in &self.stages {
            if let StageUnit::Accel(k) = stage.unit {
                if !kinds.contains(&k) {
                    kinds.push(k);
                }
            }
        }
        kinds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clara_lnic::AccelKind;

    fn table() -> TableCfg {
        TableCfg {
            name: "t".into(),
            mem: "imem".into(),
            entry_bytes: 16,
            entries: 1024,
            use_flow_cache: false,
        }
    }

    #[test]
    fn bytes_spec_resolution() {
        assert_eq!(BytesSpec::Payload.resolve(300, 354), 300);
        assert_eq!(BytesSpec::Frame.resolve(300, 354), 354);
        assert_eq!(BytesSpec::Fixed(64).resolve(300, 354), 64);
    }

    #[test]
    fn table_size() {
        assert_eq!(table().size_bytes(), 16 * 1024);
    }

    #[test]
    fn validate_catches_bad_table_index() {
        let p = NicProgram {
            name: "x".into(),
            tables: vec![],
            stages: vec![Stage {
                name: "s".into(),
                unit: StageUnit::Npu,
                ops: vec![MicroOp::TableLookup { table: 0 }],
            }],
        };
        assert!(p.validate().unwrap_err().contains("table 0"));
    }

    #[test]
    fn validate_catches_misplaced_ops() {
        let p = NicProgram {
            name: "x".into(),
            tables: vec![table()],
            stages: vec![Stage {
                name: "ck".into(),
                unit: StageUnit::Accel(AccelKind::Checksum),
                ops: vec![MicroOp::Compute { cycles: 5 }],
            }],
        };
        assert!(p.validate().unwrap_err().contains("non-accel"));

        let p = NicProgram {
            name: "x".into(),
            tables: vec![],
            stages: vec![Stage {
                name: "s".into(),
                unit: StageUnit::Npu,
                ops: vec![MicroOp::AccelCall { bytes: BytesSpec::Payload }],
            }],
        };
        assert!(p.validate().unwrap_err().contains("AccelCall"));
    }

    #[test]
    fn valid_program_passes() {
        let p = NicProgram {
            name: "ok".into(),
            tables: vec![table()],
            stages: vec![
                Stage {
                    name: "npu".into(),
                    unit: StageUnit::Npu,
                    ops: vec![
                        MicroOp::ParseHeader,
                        MicroOp::Hash { count: 1 },
                        MicroOp::TableLookup { table: 0 },
                        MicroOp::StreamPayload { table: Some(0), loop_overhead: 10 },
                    ],
                },
                Stage {
                    name: "ck".into(),
                    unit: StageUnit::Accel(AccelKind::Checksum),
                    ops: vec![MicroOp::AccelCall { bytes: BytesSpec::Frame }],
                },
            ],
        };
        assert!(p.validate().is_ok());
        assert_eq!(p.state_bytes(), 16 * 1024);
        assert_eq!(p.required_accels(), vec![AccelKind::Checksum]);
    }
}
