//! Fault injection: degraded-hardware scenarios for robustness studies.
//!
//! A [`FaultPlan`] describes what is broken on the NIC (or in the traffic)
//! during a run. The engine absorbs every fault gracefully: packets that
//! cannot be serviced are *dropped and counted*, and surviving packets see
//! honestly degraded latency — the simulator never panics because hardware
//! misbehaves. This mirrors how a real SmartNIC fails in production
//! (engines wedge, threads are stolen by firmware, caches are thrashed by
//! co-tenants, queues overflow, frames arrive truncated).

use clara_lnic::AccelKind;

/// Everything that can be broken during one simulation run.
///
/// The default plan injects nothing; [`FaultPlan::none`] spells that out.
/// Fields compose freely — an outage and a thrashed cache can be active in
/// the same run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Accelerator engines that are entirely offline. Packets whose
    /// program needs an offline engine are dropped at ingress and counted
    /// in [`SimResult::accel_drops`](crate::SimResult::accel_drops) —
    /// except the flow cache, whose loss silently degrades lookups to the
    /// backing memory (latency, not loss).
    pub accel_outage: Vec<AccelKind>,
    /// Extra cycles added to every service of a wedged (but alive)
    /// accelerator: `(engine, stall cycles per call)`.
    pub accel_stall: Vec<(AccelKind, u64)>,
    /// Disable the EMEM cache outright: every access pays the cold
    /// external-memory latency.
    pub disable_emem_cache: bool,
    /// A hostile co-tenant flushes the EMEM cache between packets, so no
    /// working set survives across packets.
    pub thrash_emem_cache: bool,
    /// NPU hardware threads lost (wedged or reserved by firmware). Losing
    /// every thread is a setup error
    /// ([`SimError::NoThreads`](crate::SimError::NoThreads)), not a panic.
    pub dead_threads: usize,
    /// Override the ingress queue depth (a misconfigured or shrunken
    /// buffer). Overflowing packets are dropped and counted in
    /// [`SimResult::dropped`](crate::SimResult::dropped).
    pub ingress_capacity: Option<usize>,
    /// Every `n`-th packet arrives corrupt (bad CRC) and is dropped at
    /// ingress; `0` disables. Counted in
    /// [`SimResult::corrupt_drops`](crate::SimResult::corrupt_drops).
    pub corrupt_every: u64,
    /// Every `n`-th packet arrives truncated to at most
    /// [`TRUNCATED_PAYLOAD_BYTES`] of payload; `0` disables. The runt is
    /// still processed (with its short length) and counted in
    /// [`SimResult::truncated`](crate::SimResult::truncated).
    pub truncate_every: u64,
}

/// Payload bytes surviving a truncation fault.
pub const TRUNCATED_PAYLOAD_BYTES: u64 = 64;

impl FaultPlan {
    /// The healthy-hardware plan: nothing is injected.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when this plan injects nothing.
    pub fn is_none(&self) -> bool {
        *self == FaultPlan::default()
    }

    /// Stall cycles for `kind`, or 0 when it is healthy.
    pub fn stall_cycles(&self, kind: AccelKind) -> u64 {
        self.accel_stall
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    }

    /// True when `kind` is offline under this plan.
    pub fn is_offline(&self, kind: AccelKind) -> bool {
        self.accel_outage.contains(&kind)
    }

    /// Stall cycles a stage on `unit` pays per accelerator call.
    pub fn accel_stall_for(&self, unit: &crate::program::StageUnit) -> u64 {
        match unit {
            crate::program::StageUnit::Accel(k) => self.stall_cycles(*k),
            crate::program::StageUnit::Npu => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_none() {
        assert!(FaultPlan::none().is_none());
        assert!(!FaultPlan { dead_threads: 1, ..FaultPlan::none() }.is_none());
    }

    #[test]
    fn stall_lookup() {
        let plan = FaultPlan {
            accel_stall: vec![(AccelKind::Crypto, 500)],
            ..FaultPlan::none()
        };
        assert_eq!(plan.stall_cycles(AccelKind::Crypto), 500);
        assert_eq!(plan.stall_cycles(AccelKind::Checksum), 0);
        assert!(!plan.is_offline(AccelKind::Crypto));
    }
}
