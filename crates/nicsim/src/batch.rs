//! Batched struct-of-arrays evaluation of signature-pure runs.
//!
//! The scalar engine walks packets one at a time, paying per packet for
//! dispatch hashing, memo lookups, and the stage loop even when every
//! stage's cost is a pure function of (executing unit, payload length).
//! This module evaluates such runs columnwise instead:
//!
//! 1. **Ingest** — the trace is materialized into row + column arenas
//!    (arrival cycles with the monotonicity clamp, dispatch thread,
//!    effective payload length after truncation faults).
//! 2. **Classify** — threads are grouped into *cost-equivalence unit
//!    groups* (units whose cost model, FPU, residence CTM latency, and
//!    per-table-region latencies agree produce identical stage costs),
//!    and each packet maps to a `(group, payload length)` class. Each
//!    class's per-stage costs are computed once, by the exact
//!    [`stage_cost`] the scalar path uses — the memo is consulted per
//!    unique length, not per packet.
//! 3. **Merge** — a tight sequential recurrence replays the ingress
//!    queue, per-thread `free_at` chains, and both watchdog limits in
//!    packet order, emitting completions and latencies.
//!
//! With [`crate::SimConfig::islands`], step 3's per-thread start/finish
//! chains are computed island-parallel first: threads only interact
//! through the ingress queue and the run-total watchdog, and both are
//! verified in the sequential merge afterwards, so the parallel phase
//! is exact whenever the merge accepts it.
//!
//! **Partial-run batching** ([`run_partial`]) extends the same idea to
//! runs where some stages are `Live`: stages are *planned*
//! individually. Signature-pure stages still get per-class column
//! costs; stages whose only live dependence is a flow-cache front over
//! an uncached region get their pure ops costed per class and only the
//! two-valued flow-cache branch (hit constant vs per-(group, table)
//! miss constant) replayed per packet, with the LRU state and hit/miss
//! counters advanced exactly as the scalar path would; genuinely
//! history-coupled stages (accelerator queues, cached regions) are
//! replayed through the scalar [`stage_cost`] at the packet's true
//! start time. Because the merge is a full sequential replay, the
//! partial kernel handles ingress-overflow drops and cache-thrash
//! faults inline and never refuses a run.
//!
//! **Fidelity contract**: every result this module produces is
//! bit-identical to the scalar loop. Saturating per-packet sums of
//! non-negative costs equal `min(true_sum, u64::MAX)` independent of
//! association, so per-class totals replayed per packet are exact; any
//! condition that breaks the full kernel's closed form — an
//! ingress-queue overflow drop (which skips a thread's `free_at`
//! update), or cycle counts near the `u64` saturation region — makes
//! [`run_batched`] return `Ok(None)` and the engine replays the scalar
//! loop from the same rows. Falling back is always safe; completing the
//! batch is only done when it is provably exact.
//!
//! Both kernels consult the engine's shared [`CostView`] (when one is
//! attached) before computing a class's pure stage cost, and publish
//! what they compute — the same keys, under the same post-fault run
//! fingerprint, that the scalar memo path uses.

use crate::costcache::CostView;
use crate::engine::{
    classify_op, mix, npu_op_cost, stage_cost, AccelProbe, AccelRt, OpClass, SimError, StageClass,
    TableRt, ThreadRt,
};
use crate::fault::{FaultPlan, TRUNCATED_PAYLOAD_BYTES};
use crate::memory::MemorySim;
use crate::program::{MicroOp, NicProgram, StageUnit};
use crate::watchdog::{Watchdog, DEADLINE_STRIDE};
use clara_lnic::{Lnic, MemId, UnitId};
use clara_workload::TracePacket;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Sentinel class ids for statically dropped rows.
const CLASS_CORRUPT: u32 = u32::MAX;
const CLASS_OFFLINE: u32 = u32::MAX - 1;

/// Finish times are only trusted while far from the saturation region:
/// below this bound, plain and saturating u64 adds agree, so the
/// per-class closed form equals the scalar per-stage chain.
const SAFE_CYCLES: u128 = 1 << 63;

/// Column arenas and class tables, retained across runs by
/// [`crate::SimScratch`].
#[derive(Default)]
pub(crate) struct BatchScratch {
    /// Arrival cycle per row (monotonicity clamp already applied).
    arrivals: Vec<u64>,
    /// Dispatch thread per row (valid only for classed rows).
    tids: Vec<u32>,
    /// Class id per row, or a `CLASS_*` drop sentinel.
    class_of: Vec<u32>,
    /// Unique effective payload lengths, in first-encounter order.
    lens: Vec<u64>,
    /// Cost-equivalence group per thread.
    tid_group: Vec<u32>,
    /// Representative `(unit, ctm)` per group.
    group_reps: Vec<(UnitId, Option<MemId>)>,
    /// Group per unit index (`u32::MAX` = not yet grouped), rebuilt each
    /// run — a direct-indexed memo while grouping.
    unit_groups: Vec<u32>,
    /// Per-class costs, indexed `len_idx * group_count + group`.
    classes: Vec<ClassCost>,
    /// Completed packets per class, for the stage-total closed form.
    class_count: Vec<u64>,
    /// Island id per thread (islands mode).
    tid_island: Vec<u32>,
    /// Per-row start/finish columns (islands mode).
    starts: Vec<u64>,
    fins: Vec<u64>,
    /// Per-stage evaluation plan (partial kernel).
    plan: Vec<StagePlan>,
    /// Flow-cache miss-path constants, indexed `group * n_tables + table`
    /// (partial kernel; nonzero only for fc-fronted uncached tables).
    fc_miss: Vec<u64>,
    /// Direct-mapped flow → `(hash64, tid)` memo. Both values are pure —
    /// the hash in the five-tuple alone, the dispatch thread in the hash
    /// plus the thread count — so entries survive across runs and
    /// traces; [`BatchScratch::prepare_flow_lut`] flushes the map when a
    /// run arrives with a different thread count.
    flow_lut: Vec<FlowLutEntry>,
    /// Thread count the cached `tid`s were derived under.
    flow_lut_threads: u64,
}

/// log2 of the flow-LUT slot count: 8192 entries keep the zipf-heavy
/// sweep traces (a few thousand distinct flows per body) nearly
/// collision-free while staying L2-resident.
const FLOW_LUT_BITS: u32 = 13;

/// One flow-LUT slot: the five-tuple packed into two words plus the
/// memoized hash and dispatch thread. `b` packs ports and protocol into
/// 40 bits, so `u64::MAX` is a safe empty sentinel.
#[derive(Clone, Copy)]
struct FlowLutEntry {
    a: u64,
    b: u64,
    hash: u64,
    tid: u32,
}

const FLOW_LUT_EMPTY: FlowLutEntry = FlowLutEntry { a: 0, b: u64::MAX, hash: 0, tid: 0 };

/// The five-tuple as two comparison words: addresses in `a`, ports and
/// protocol in `b` (40 bits used — the empty sentinel cannot collide).
#[inline]
fn flow_words(flow: &clara_packet::FiveTuple) -> (u64, u64) {
    let a = (u64::from(u32::from_le_bytes(flow.src_ip)) << 32)
        | u64::from(u32::from_le_bytes(flow.dst_ip));
    let b = (u64::from(flow.src_port) << 24)
        | (u64::from(flow.dst_port) << 8)
        | u64::from(flow.proto.number());
    (a, b)
}

impl BatchScratch {
    /// Size the LUT (first run) or flush it (thread count changed, which
    /// invalidates the cached `tid`s but not the hashes — flushing both
    /// keeps the slot layout trivial).
    fn prepare_flow_lut(&mut self, n_threads: u64) {
        if self.flow_lut.is_empty() {
            self.flow_lut = vec![FLOW_LUT_EMPTY; 1 << FLOW_LUT_BITS];
            self.flow_lut_threads = n_threads;
        } else if self.flow_lut_threads != n_threads {
            self.flow_lut.fill(FLOW_LUT_EMPTY);
            self.flow_lut_threads = n_threads;
        }
    }

    /// `(flow.hash64(), dispatch tid)` via the memo. A hit replays the
    /// exact values a miss would compute — [`clara_packet::FiveTuple::
    /// hash64`] is deterministic and the `mix`/modulo dispatch map reads
    /// nothing but the hash and `n_threads` — so the scalar and batched
    /// paths stay bit-identical with or without the LUT populated.
    #[inline]
    fn flow_hash_tid(&mut self, flow: &clara_packet::FiveTuple, n_threads: u64) -> (u64, u32) {
        let (a, b) = flow_words(flow);
        let idx = ((a.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ b.wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
            >> (64 - FLOW_LUT_BITS)) as usize;
        let e = &mut self.flow_lut[idx];
        if e.a == a && e.b == b {
            return (e.hash, e.tid);
        }
        let hash = flow.hash64();
        let tid = (mix(hash ^ 0x5a5a) % n_threads) as u32;
        *e = FlowLutEntry { a, b, hash, tid };
        (hash, tid)
    }
}

/// How the partial kernel evaluates one stage.
#[derive(Clone, Copy, PartialEq, Eq)]
enum StagePlan {
    /// Signature-pure: cost replayed from the class column.
    Pure,
    /// Pure ops costed per class; flow-cache branches replayed per
    /// packet against the real LRU state.
    Fc,
    /// History-coupled: full scalar [`stage_cost`] per packet.
    Scalar,
}

/// Cost of one `(unit group, payload length)` class.
#[derive(Default, Clone)]
struct ClassCost {
    computed: bool,
    /// Per-stage costs from the exact scalar `stage_cost`.
    per_stage: Vec<u64>,
    /// True (unsaturated) ingress + stages + egress total.
    total: u128,
    /// First stage whose saturating running sum crossed the per-packet
    /// watchdog limit, with the sum at that point.
    trip: Option<(u32, u64)>,
    /// The saturating chain diverged from the true sum without
    /// tripping: only possible with a disabled per-packet limit, and
    /// the closed form no longer holds — force the scalar fallback.
    risk: bool,
}

/// Everything one batched run needs, borrowed from the engine's setup.
pub(crate) struct BatchRun<'a> {
    pub nic: &'a Lnic,
    pub prog: &'a NicProgram,
    pub faults: &'a FaultPlan,
    pub watchdog: &'a Watchdog,
    /// Ingested rows. [`run_partial`] reads a pre-filled arena;
    /// [`run_batched`] fills it itself while building columns (one fused
    /// pass) so a refusal can still replay the scalar loop over it.
    pub rows: &'a mut Vec<TracePacket>,
    pub emem: Option<MemId>,
    pub fc_engine_cycles: u64,
    pub offline_required: bool,
    pub ingress_lat: u64,
    pub egress_lat: u64,
    pub ingress_capacity: usize,
    pub stage_stalls: &'a [u64],
    pub freq: f64,
    pub pkt_limit: u64,
    pub total_limit: u64,
    pub use_islands: bool,
    /// Per-stage memoization classes, decided by the engine post-fault.
    pub classes: &'a [StageClass],
    /// Shared cost-cache view for this run's fingerprint, if attached.
    pub shared: Option<&'a CostView>,
    /// Shared-layer resolution tallies (hit = answered by `shared`,
    /// miss = computed then published), folded into `SimStats` and the
    /// cache atomics by the engine.
    pub memo_hits: &'a mut u64,
    pub memo_misses: &'a mut u64,
    pub mem: &'a mut MemorySim,
    pub tables: &'a mut Vec<TableRt>,
    pub accels: &'a mut [Option<AccelRt>; 4],
    pub threads: &'a mut [ThreadRt],
    pub pending: &'a mut BinaryHeap<Reverse<u64>>,
    pub latencies: &'a mut Vec<u64>,
    pub completions: &'a mut Vec<u64>,
    pub stage_totals: &'a mut [u64],
    pub fc_hits: &'a mut u64,
    pub fc_misses: &'a mut u64,
    pub scratch: &'a mut BatchScratch,
    pub thread_island: &'a [usize],
    pub island_busy: &'a mut [u64],
    pub instrumented: bool,
    /// Accelerator probes (partial kernel only: live accelerator stages
    /// are replayed through the instrumented scalar path).
    pub probes: Option<&'a mut [AccelProbe; 4]>,
}

/// Counters a completed batch hands back to the engine's epilogue.
#[derive(Default)]
pub(crate) struct BatchTally {
    pub offered: usize,
    pub overflow_drops: usize,
    pub accel_drops: usize,
    pub corrupt_drops: usize,
    pub truncated: usize,
    pub busy_cycles: u64,
    pub batch_packets: u64,
    pub island_packets: u64,
    pub partial_packets: u64,
}

/// Whether two `(unit, ctm)` placements are cost-equivalent: every
/// per-unit input [`stage_cost`] can read on an NPU stage — the cost
/// model, FPU, CTM latency and bulk rate, EMEM latency and bulk rate,
/// and each table's raw latency — compares equal. Equivalent placements
/// produce equal stage costs for every (stage, payload length), so one
/// representative computation covers the whole group.
fn cost_equivalent(
    nic: &Lnic,
    mem: &MemorySim,
    tables: &[TableRt],
    a: (UnitId, Option<MemId>),
    b: (UnitId, Option<MemId>),
    emem: Option<MemId>,
) -> bool {
    let (ua, ub) = (nic.unit(a.0), nic.unit(b.0));
    if ua.cost != ub.cost || ua.has_fpu != ub.has_fpu {
        return false;
    }
    match (a.1, b.1) {
        (Some(ca), Some(cb)) => {
            if mem.raw_latency(a.0, ca) != mem.raw_latency(b.0, cb)
                || mem.bulk_per_byte(ca) != mem.bulk_per_byte(cb)
            {
                return false;
            }
        }
        (None, None) => {}
        _ => return false,
    }
    if let Some(e) = emem {
        if mem.raw_latency(a.0, e) != mem.raw_latency(b.0, e) {
            return false;
        }
    }
    tables.iter().all(|t| mem.raw_latency(a.0, t.mem) == mem.raw_latency(b.0, t.mem))
}

/// Phase 0 of both kernels: group threads into cost-equivalence unit
/// groups (see [`cost_equivalent`]), filling `tid_group`, `group_reps`,
/// and the grouping memo. Returns the group count.
fn group_units(
    scratch: &mut BatchScratch,
    nic: &Lnic,
    mem: &MemorySim,
    tables: &[TableRt],
    threads: &[ThreadRt],
    emem: Option<MemId>,
) -> usize {
    scratch.tid_group.clear();
    scratch.group_reps.clear();
    scratch.unit_groups.clear();
    scratch.unit_groups.resize(nic.units().len(), u32::MAX);
    for t in threads.iter() {
        let g = match scratch.unit_groups[t.unit.0] {
            u32::MAX => {
                let g = match scratch
                    .group_reps
                    .iter()
                    .position(|&rep| cost_equivalent(nic, mem, tables, rep, (t.unit, t.ctm), emem))
                {
                    Some(g) => g as u32,
                    None => {
                        scratch.group_reps.push((t.unit, t.ctm));
                        (scratch.group_reps.len() - 1) as u32
                    }
                };
                scratch.unit_groups[t.unit.0] = g;
                g
            }
            g => g,
        };
        scratch.tid_group.push(g);
    }
    scratch.group_reps.len()
}

/// Resolve one pure class stage cost: shared view first, computing (and
/// publishing) through the exact scalar path on a shared miss. The keys
/// — `(stage, unit)` for `Fixed`, `(stage, unit, len)` for
/// `PayloadPure` — are the ones the scalar memo path uses, under the
/// same post-fault run fingerprint, so replaying a shared value is
/// bit-identical by construction.
#[allow(clippy::too_many_arguments)]
fn resolve_pure_stage(
    shared: Option<&CostView>,
    memo_hits: &mut u64,
    memo_misses: &mut u64,
    class: StageClass,
    si: u32,
    unit: UnitId,
    len: u64,
    compute: impl FnOnce() -> Result<u64, SimError>,
) -> Result<u64, SimError> {
    let shared_hit = shared.and_then(|v| match class {
        StageClass::Fixed => v.get_fixed(si, unit.0 as u32),
        StageClass::PayloadPure => v.get_payload(si, unit.0 as u32, len),
        StageClass::Live => None,
    });
    if let Some(c) = shared_hit {
        *memo_hits += 1;
        return Ok(c);
    }
    let c = compute()?;
    if class != StageClass::Live {
        *memo_misses += 1;
        if let Some(v) = shared {
            match class {
                StageClass::Fixed => v.put_fixed(si, unit.0 as u32, c),
                StageClass::PayloadPure => v.put_payload(si, unit.0 as u32, len, c),
                StageClass::Live => {}
            }
        }
    }
    Ok(c)
}

/// Run the batched kernel over a packet stream. Ingestion is fused with
/// column building: one pass fills the row arena (kept for a potential
/// scalar replay) and, in the common single-island shape, drives the
/// merge inline — ingress-queue overflow drops included, replayed in
/// the scalar loop's exact order. `Ok(Some(tally))` means the arenas
/// hold a completed, exact run; `Ok(None)` means the kernel refused (a
/// risk class, cycle counts near saturation, or — staged islands only —
/// an overflow the precomputed chains did not model) and the caller
/// must replay the scalar loop over the (fully ingested) rows; `Err` is
/// the same error the scalar loop would have returned.
pub(crate) fn run_batched<I: Iterator<Item = TracePacket>>(
    run: BatchRun<'_>,
    packets: I,
) -> Result<Option<BatchTally>, SimError> {
    let BatchRun {
        nic,
        prog,
        faults,
        watchdog,
        rows,
        emem,
        fc_engine_cycles,
        offline_required,
        ingress_lat,
        egress_lat,
        ingress_capacity,
        stage_stalls,
        freq,
        pkt_limit,
        total_limit,
        use_islands,
        classes,
        shared,
        memo_hits,
        memo_misses,
        mem,
        tables,
        accels,
        threads,
        pending,
        latencies,
        completions,
        stage_totals,
        fc_hits,
        fc_misses,
        scratch,
        thread_island,
        island_busy,
        instrumented,
        probes: _,
    } = run;

    // ---- Phase 0: cost-equivalence unit groups --------------------------
    let group_count = group_units(scratch, nic, mem, tables, threads, emem);

    // Islands staging is decided before ingest: with more than one
    // populated island the merge needs every row classed first (the
    // per-island chains of phase 2 run whole-column), so the loop fills
    // the tid/class columns and the merge runs as a separate pass.
    // Otherwise — the common sweep shape — the merge happens inline in
    // the same pass, and each packet is touched exactly once.
    let n_islands = if use_islands {
        scratch.tid_island.clear();
        for t in threads.iter() {
            scratch.tid_island.push(nic.unit(t.unit).island.unwrap_or(0) as u32);
        }
        scratch.tid_island.iter().copied().max().map_or(0, |m| m + 1)
    } else {
        0
    };
    let staged = n_islands > 1;

    // ---- Phase 1: fused ingest + columns + per-class costs --------------
    // One pass over the stream: each packet lands in the row arena (so a
    // refusal can replay the scalar loop over complete rows) and in the
    // column arenas (staged) or straight through the merge (unstaged). A
    // refusal discovered mid-stream — a risk class, cycle counts near
    // saturation — stops batch work but keeps ingesting rows until the
    // stream is drained; the engine resets every piece of state a
    // refused attempt touched before it replays the scalar loop.
    rows.clear();
    scratch.arrivals.clear();
    scratch.tids.clear();
    scratch.class_of.clear();
    scratch.lens.clear();
    scratch.classes.clear();
    scratch.class_count.clear();
    let n_threads = threads.len() as u64;
    scratch.prepare_flow_lut(n_threads);
    let mut tally = BatchTally::default();
    let mut busy_cycles = 0u64;
    let mut last_arrival = 0u64;
    let mut refused = false;
    for (idx, tp) in packets.enumerate() {
        // Same supervision cadence the scalar loop polls at.
        if idx % DEADLINE_STRIDE == 0 && watchdog.expired() {
            return Err(SimError::TimedOut);
        }
        rows.push(tp);
        if refused {
            continue;
        }
        let tp = &rows[idx];
        // Same conversion and monotonicity clamp as the scalar loop.
        let arrival = ((tp.ts_ns as f64 * freq).round() as u64).max(last_arrival);
        last_arrival = arrival;
        if staged {
            scratch.arrivals.push(arrival);
        }
        if faults.corrupt_every > 0 && (idx as u64 + 1).is_multiple_of(faults.corrupt_every) {
            if staged {
                scratch.tids.push(0);
                scratch.class_of.push(CLASS_CORRUPT);
            } else {
                tally.corrupt_drops += 1;
            }
            continue;
        }
        if offline_required {
            if staged {
                scratch.tids.push(0);
                scratch.class_of.push(CLASS_OFFLINE);
            } else {
                tally.accel_drops += 1;
            }
            continue;
        }
        if !staged {
            // Ingress queue, in the scalar loop's exact order: drain
            // started packets, then the capacity check — an overflow
            // drop happens before dispatch, truncation, and class work,
            // and skips them all (including their tallies).
            while pending.peek().is_some_and(|&Reverse(s)| s <= arrival) {
                pending.pop();
            }
            if pending.len() >= ingress_capacity {
                tally.overflow_drops += 1;
                continue;
            }
        }
        let (flow_hash, tid) = scratch.flow_hash_tid(&tp.spec.flow, n_threads);
        let tid = tid as usize;
        if staged {
            scratch.tids.push(tid as u32);
        }
        let mut len = tp.spec.payload_len as u64;
        if faults.truncate_every > 0 && (idx as u64 + 1).is_multiple_of(faults.truncate_every) {
            tally.truncated += 1;
            len = len.min(TRUNCATED_PAYLOAD_BYTES);
        }
        let len_idx = match scratch.lens.iter().position(|&l| l == len) {
            Some(i) => i,
            None => {
                scratch.lens.push(len);
                scratch
                    .classes
                    .resize_with(scratch.lens.len() * group_count, ClassCost::default);
                scratch.class_count.resize(scratch.lens.len() * group_count, 0);
                scratch.lens.len() - 1
            }
        };
        let cid = len_idx * group_count + scratch.tid_group[tid] as usize;
        if !scratch.classes[cid].computed {
            // First encounter: compute per-stage costs through the exact
            // scalar path. The NPU arm of `stage_cost` never reads the
            // stage start, and eligibility guarantees every stage is an
            // NPU stage, so a zero start is exact. Addresses derive from
            // this packet's flow hash and payload seed; uncached-region
            // access cost is address-free, so any class member yields
            // the same costs.
            let (unit, ctm) = scratch.group_reps[scratch.tid_group[tid] as usize];
            let mut per_stage = Vec::with_capacity(prog.stages.len());
            for (si, stage) in prog.stages.iter().enumerate() {
                per_stage.push(resolve_pure_stage(
                    shared,
                    memo_hits,
                    memo_misses,
                    classes[si],
                    si as u32,
                    unit,
                    len,
                    || {
                        stage_cost(
                            nic,
                            mem,
                            tables,
                            accels,
                            stage,
                            unit,
                            ctm,
                            0,
                            len,
                            0,
                            flow_hash,
                            tp.spec.payload_seed,
                            emem,
                            fc_hits,
                            fc_misses,
                            fc_engine_cycles,
                            stage_stalls[si],
                            None,
                        )
                    },
                )?);
            }
            let mut chain = 0u64;
            let mut sum = 0u128;
            let mut trip = None;
            for (si, &c) in per_stage.iter().enumerate() {
                chain = chain.saturating_add(c);
                sum += c as u128;
                if trip.is_none() && chain > pkt_limit {
                    trip = Some((si as u32, chain));
                }
            }
            scratch.classes[cid] = ClassCost {
                computed: true,
                risk: trip.is_none() && chain as u128 != sum,
                total: ingress_lat as u128 + sum + egress_lat as u128,
                per_stage,
                trip,
            };
        }
        if scratch.classes[cid].risk {
            // Refusal: stop batch work but keep draining the stream into
            // the row arena so the scalar replay sees every packet.
            refused = true;
            continue;
        }
        if staged {
            scratch.class_of.push(cid as u32);
            continue;
        }

        // Inline merge (single island): the scalar loop's dispatch and
        // accounting, with the per-stage chain replayed from the class.
        let cls = &scratch.classes[cid];
        if let Some((si, cycles)) = cls.trip {
            return Err(SimError::Watchdog {
                packet: idx,
                stage: prog.stages[si as usize].name.clone(),
                cycles,
                limit: pkt_limit,
            });
        }
        let start = arrival.max(threads[tid].free_at);
        let fin = start as u128 + cls.total;
        if fin >= SAFE_CYCLES {
            refused = true;
            continue;
        }
        let fin = fin as u64;
        if start > arrival {
            pending.push(Reverse(start));
        }
        threads[tid].free_at = fin;
        let service = fin - start;
        if instrumented {
            island_busy[thread_island[tid]] += service;
        }
        busy_cycles = busy_cycles.saturating_add(service);
        if busy_cycles > total_limit {
            return Err(SimError::Watchdog {
                packet: idx,
                stage: "<run total>".into(),
                cycles: busy_cycles,
                limit: total_limit,
            });
        }
        scratch.class_count[cid] += 1;
        completions.push(fin);
        latencies.push(fin - arrival);
    }
    if refused {
        return Ok(None);
    }
    tally.offered = rows.len();

    // ---- Phase 2 (islands mode): parallel per-thread chains -------------
    // Threads only interact through the ingress queue (verified in the
    // sequential merge; any overflow forces the scalar fallback) and the
    // watchdogs (replayed in the merge), so per-thread start/finish
    // recurrences are island-independent and exact.
    if staged {
        {
            scratch.starts.clear();
            scratch.starts.resize(rows.len(), 0);
            scratch.fins.clear();
            scratch.fins.resize(rows.len(), 0);
            let arrivals = &scratch.arrivals;
            let tids = &scratch.tids;
            let class_of = &scratch.class_of;
            let classes = &scratch.classes;
            let tid_island = &scratch.tid_island;
            let parts = std::thread::scope(|s| {
                let workers: Vec<_> = (0..n_islands)
                    .map(|isl| {
                        s.spawn(move || {
                            let mut free_at = vec![0u64; tid_island.len()];
                            let mut out: Vec<(u32, u64, u64)> = Vec::new();
                            let mut overflow = false;
                            for idx in 0..class_of.len() {
                                if class_of[idx] >= CLASS_OFFLINE {
                                    continue;
                                }
                                let tid = tids[idx] as usize;
                                if tid_island[tid] != isl {
                                    continue;
                                }
                                let start = arrivals[idx].max(free_at[tid]);
                                let fin =
                                    start as u128 + classes[class_of[idx] as usize].total;
                                if fin >= SAFE_CYCLES {
                                    overflow = true;
                                    break;
                                }
                                free_at[tid] = fin as u64;
                                out.push((idx as u32, start, fin as u64));
                            }
                            (out, overflow)
                        })
                    })
                    .collect();
                workers.into_iter().map(|w| w.join()).collect::<Vec<_>>()
            });
            for part in parts {
                let Ok((out, overflow)) = part else {
                    return Ok(None); // a worker panicked: replay scalar
                };
                if overflow {
                    return Ok(None);
                }
                for (idx, start, fin) in out {
                    scratch.starts[idx as usize] = start;
                    scratch.fins[idx as usize] = fin;
                }
            }
        }

        // ---- Phase 3 (staged only): sequential merge --------------------
        for idx in 0..rows.len() {
            if idx % DEADLINE_STRIDE == 0 && watchdog.expired() {
                return Err(SimError::TimedOut);
            }
            let cid = scratch.class_of[idx];
            if cid == CLASS_CORRUPT {
                tally.corrupt_drops += 1;
                continue;
            }
            if cid == CLASS_OFFLINE {
                tally.accel_drops += 1;
                continue;
            }
            let arrival = scratch.arrivals[idx];
            while pending.peek().is_some_and(|&Reverse(s)| s <= arrival) {
                pending.pop();
            }
            if pending.len() >= ingress_capacity {
                // An overflow drop skips the thread's `free_at` update,
                // which the island chains did not model: replay the
                // scalar loop instead.
                return Ok(None);
            }
            let tid = scratch.tids[idx] as usize;
            let cls = &scratch.classes[cid as usize];
            if let Some((si, cycles)) = cls.trip {
                return Err(SimError::Watchdog {
                    packet: idx,
                    stage: prog.stages[si as usize].name.clone(),
                    cycles,
                    limit: pkt_limit,
                });
            }
            let (start, fin) = (scratch.starts[idx], scratch.fins[idx]);
            if start > arrival {
                pending.push(Reverse(start));
            }
            threads[tid].free_at = fin;
            let service = fin - start;
            if instrumented {
                island_busy[thread_island[tid]] += service;
            }
            busy_cycles = busy_cycles.saturating_add(service);
            if busy_cycles > total_limit {
                return Err(SimError::Watchdog {
                    packet: idx,
                    stage: "<run total>".into(),
                    cycles: busy_cycles,
                    limit: total_limit,
                });
            }
            scratch.class_count[cid as usize] += 1;
            completions.push(fin);
            latencies.push(fin - arrival);
        }
        tally.island_packets = latencies.len() as u64;
    }

    // Stage totals via the per-class closed form: a saturating chain of
    // non-negative u64 adds equals min(true sum, u64::MAX) regardless of
    // association, so count × cost accumulated in u128 and clamped is
    // bit-identical to the scalar per-packet accumulation.
    for (cid, &count) in scratch.class_count.iter().enumerate() {
        if count == 0 {
            continue;
        }
        for (si, &c) in scratch.classes[cid].per_stage.iter().enumerate() {
            let sum = stage_totals[si] as u128 + c as u128 * count as u128;
            stage_totals[si] = u64::try_from(sum).unwrap_or(u64::MAX);
        }
    }

    tally.busy_cycles = busy_cycles;
    tally.batch_packets = latencies.len() as u64;
    Ok(Some(tally))
}

/// Partial-run batching: per-stage plans instead of an all-or-nothing
/// gate. Pure stages replay class-column costs; flow-cache-only stages
/// replay only the two-valued cache branch against the real LRU state;
/// everything else goes through the scalar [`stage_cost`] at the
/// packet's true start time. The merge is a full sequential replay of
/// the scalar loop's control flow (ingress queue, overflow drops,
/// truncation, cache-thrash flushes, both watchdogs), so this kernel
/// never refuses a run — every per-packet effect the closed form cannot
/// capture is simply replayed exactly.
pub(crate) fn run_partial(run: BatchRun<'_>) -> Result<BatchTally, SimError> {
    let BatchRun {
        nic,
        prog,
        faults,
        watchdog,
        rows,
        emem,
        fc_engine_cycles,
        offline_required,
        ingress_lat,
        egress_lat,
        ingress_capacity,
        stage_stalls,
        freq,
        pkt_limit,
        total_limit,
        use_islands: _,
        classes,
        shared,
        memo_hits,
        memo_misses,
        mem,
        tables,
        accels,
        threads,
        pending,
        latencies,
        completions,
        stage_totals,
        fc_hits,
        fc_misses,
        scratch,
        thread_island,
        island_busy,
        instrumented,
        mut probes,
    } = run;
    let rows: &[TracePacket] = rows;

    // ---- Phase 0: unit groups + per-stage plans -------------------------
    let group_count = group_units(scratch, nic, mem, tables, threads, emem);
    scratch.plan.clear();
    for (si, stage) in prog.stages.iter().enumerate() {
        let plan = if classes[si] != StageClass::Live {
            StagePlan::Pure
        } else if matches!(stage.unit, StageUnit::Npu) {
            let mut any_fc = false;
            let all_ok = stage.ops.iter().all(|op| match classify_op(op, tables, mem) {
                OpClass::Fixed | OpClass::PayloadPure => true,
                OpClass::FlowCacheOnly => {
                    any_fc = true;
                    true
                }
                OpClass::Live => false,
            });
            if all_ok && any_fc {
                StagePlan::Fc
            } else {
                StagePlan::Scalar
            }
        } else {
            StagePlan::Scalar
        };
        scratch.plan.push(plan);
    }

    // Flow-cache branch constants. The hit path never touches memory;
    // the miss path probes the engine and reads the *uncached* backing
    // region (FlowCacheOnly requires it), whose access cost is
    // address-free — one constant per (unit group, table). Units in a
    // group share per-table raw latencies by construction of
    // [`cost_equivalent`], and bulk rates are per-region, so the group
    // representative's constant is exact for every member.
    let n_tables = tables.len();
    let fc_hit_cost = fc_engine_cycles + 4;
    scratch.fc_miss.clear();
    scratch.fc_miss.resize(group_count * n_tables, 0);
    if scratch.plan.contains(&StagePlan::Fc) {
        for g in 0..group_count {
            let (unit, _) = scratch.group_reps[g];
            for (ti, t) in tables.iter().enumerate() {
                if t.fc.is_some() && !mem.has_cache(t.mem) {
                    scratch.fc_miss[g * n_tables + ti] =
                        fc_engine_cycles + mem.access(unit, t.mem, t.base, t.entry_bytes) + 4;
                }
            }
        }
    }

    // ---- Phase 1: columns + per-class pure costs ------------------------
    scratch.arrivals.clear();
    scratch.tids.clear();
    scratch.class_of.clear();
    scratch.lens.clear();
    scratch.classes.clear();
    let n_threads = threads.len() as u64;
    scratch.prepare_flow_lut(n_threads);
    let mut last_arrival = 0u64;
    for (idx, tp) in rows.iter().enumerate() {
        let arrival = ((tp.ts_ns as f64 * freq).round() as u64).max(last_arrival);
        last_arrival = arrival;
        scratch.arrivals.push(arrival);
        if faults.corrupt_every > 0 && (idx as u64 + 1).is_multiple_of(faults.corrupt_every) {
            scratch.tids.push(0);
            scratch.class_of.push(CLASS_CORRUPT);
            continue;
        }
        if offline_required {
            scratch.tids.push(0);
            scratch.class_of.push(CLASS_OFFLINE);
            continue;
        }
        let (flow_hash, tid) = scratch.flow_hash_tid(&tp.spec.flow, n_threads);
        let tid = tid as usize;
        scratch.tids.push(tid as u32);
        let mut len = tp.spec.payload_len as u64;
        if faults.truncate_every > 0 && (idx as u64 + 1).is_multiple_of(faults.truncate_every) {
            // Tallied in the merge, after the overflow check — the
            // scalar loop does not count overflow-dropped packets.
            len = len.min(TRUNCATED_PAYLOAD_BYTES);
        }
        let len_idx = match scratch.lens.iter().position(|&l| l == len) {
            Some(i) => i,
            None => {
                scratch.lens.push(len);
                scratch
                    .classes
                    .resize_with(scratch.lens.len() * group_count, ClassCost::default);
                scratch.lens.len() - 1
            }
        };
        let cid = len_idx * group_count + scratch.tid_group[tid] as usize;
        if !scratch.classes[cid].computed {
            // First encounter: pure stages through the exact scalar
            // path (zero start is exact — the NPU arm never reads it);
            // flow-cache stages get the sum of their pure ops only, the
            // branch is replayed per packet. Addresses derive from this
            // packet's flow hash, and uncached-region access cost is
            // address-free, so any class member yields the same values.
            let (unit, ctm) = scratch.group_reps[scratch.tid_group[tid] as usize];
            let mut per_stage = Vec::with_capacity(prog.stages.len());
            for (si, stage) in prog.stages.iter().enumerate() {
                let c = match scratch.plan[si] {
                    StagePlan::Pure => resolve_pure_stage(
                        shared,
                        memo_hits,
                        memo_misses,
                        classes[si],
                        si as u32,
                        unit,
                        len,
                        || {
                            stage_cost(
                                nic,
                                mem,
                                tables,
                                accels,
                                stage,
                                unit,
                                ctm,
                                0,
                                len,
                                0,
                                flow_hash,
                                tp.spec.payload_seed,
                                emem,
                                fc_hits,
                                fc_misses,
                                fc_engine_cycles,
                                stage_stalls[si],
                                None,
                            )
                        },
                    )?,
                    StagePlan::Fc => {
                        // Pure part only; not published to the shared
                        // cache — a partial sum is not a whole-stage
                        // signature.
                        let mut part = 0u64;
                        for op in &stage.ops {
                            if matches!(
                                classify_op(op, tables, mem),
                                OpClass::Fixed | OpClass::PayloadPure
                            ) {
                                part = part.saturating_add(npu_op_cost(
                                    nic,
                                    mem,
                                    tables,
                                    op,
                                    unit,
                                    ctm,
                                    len,
                                    flow_hash,
                                    tp.spec.payload_seed,
                                    emem,
                                    fc_hits,
                                    fc_misses,
                                    fc_engine_cycles,
                                ));
                            }
                        }
                        part
                    }
                    StagePlan::Scalar => 0,
                };
                per_stage.push(c);
            }
            scratch.classes[cid] =
                ClassCost { computed: true, per_stage, ..ClassCost::default() };
        }
        scratch.class_of.push(cid as u32);
    }

    // ---- Phase 2: sequential merge (exact scalar replay) ----------------
    pending.clear();
    let mut tally = BatchTally { offered: rows.len(), ..BatchTally::default() };
    let mut busy_cycles = 0u64;
    for (idx, tp) in rows.iter().enumerate() {
        if idx % DEADLINE_STRIDE == 0 && watchdog.expired() {
            return Err(SimError::TimedOut);
        }
        let cid = scratch.class_of[idx];
        if cid == CLASS_CORRUPT {
            tally.corrupt_drops += 1;
            continue;
        }
        if cid == CLASS_OFFLINE {
            tally.accel_drops += 1;
            continue;
        }
        let arrival = scratch.arrivals[idx];
        while pending.peek().is_some_and(|&Reverse(s)| s <= arrival) {
            pending.pop();
        }
        if pending.len() >= ingress_capacity {
            tally.overflow_drops += 1;
            continue;
        }
        let tid = scratch.tids[idx] as usize;
        let flow_hash = tp.spec.flow.hash64();
        let unit = threads[tid].unit;
        let ctm = threads[tid].ctm;
        let group = scratch.tid_group[tid] as usize;
        let len = scratch.lens[cid as usize / group_count];
        let mut wire_len = tp.spec.wire_len() as u64;
        if faults.truncate_every > 0 && (idx as u64 + 1).is_multiple_of(faults.truncate_every) {
            tally.truncated += 1;
            let headers = wire_len.saturating_sub(tp.spec.payload_len as u64);
            wire_len = headers + len;
        }
        if faults.thrash_emem_cache {
            if let Some(e) = emem {
                mem.flush_cache(e);
            }
        }
        let start = arrival.max(threads[tid].free_at);
        if start > arrival {
            pending.push(Reverse(start));
        }
        let mut cur = start + ingress_lat;
        let mut pkt_cycles = 0u64;
        for (si, stage) in prog.stages.iter().enumerate() {
            let cost = match scratch.plan[si] {
                StagePlan::Pure => scratch.classes[cid as usize].per_stage[si],
                StagePlan::Fc => {
                    let mut c = scratch.classes[cid as usize].per_stage[si];
                    for op in &stage.ops {
                        let (ti, write) = match op {
                            MicroOp::TableLookup { table } if tables[*table].fc.is_some() => {
                                (*table, false)
                            }
                            MicroOp::TableWrite { table } if tables[*table].fc.is_some() => {
                                (*table, true)
                            }
                            _ => continue,
                        };
                        // Same key, same LRU mutation, same counter
                        // bumps as `table_access` — only the backing
                        // read is replaced by its per-(group, table)
                        // constant.
                        let hit = tables[ti].fc.as_mut().unwrap().access(mix(flow_hash));
                        let branch = if hit && !write {
                            *fc_hits += 1;
                            fc_hit_cost
                        } else {
                            if hit {
                                *fc_hits += 1;
                            } else {
                                *fc_misses += 1;
                            }
                            scratch.fc_miss[group * n_tables + ti]
                        };
                        c = c.saturating_add(branch);
                    }
                    c
                }
                StagePlan::Scalar => stage_cost(
                    nic,
                    mem,
                    tables,
                    accels,
                    stage,
                    unit,
                    ctm,
                    cur,
                    len,
                    wire_len,
                    flow_hash,
                    tp.spec.payload_seed,
                    emem,
                    fc_hits,
                    fc_misses,
                    fc_engine_cycles,
                    stage_stalls[si],
                    probes.as_deref_mut(),
                )?,
            };
            pkt_cycles = pkt_cycles.saturating_add(cost);
            if pkt_cycles > pkt_limit {
                return Err(SimError::Watchdog {
                    packet: idx,
                    stage: stage.name.clone(),
                    cycles: pkt_cycles,
                    limit: pkt_limit,
                });
            }
            stage_totals[si] = stage_totals[si].saturating_add(cost);
            cur = cur.saturating_add(cost);
        }
        cur += egress_lat;
        threads[tid].free_at = cur;
        if instrumented {
            island_busy[thread_island[tid]] += cur - start;
        }
        busy_cycles = busy_cycles.saturating_add(cur - start);
        if busy_cycles > total_limit {
            return Err(SimError::Watchdog {
                packet: idx,
                stage: "<run total>".into(),
                cycles: busy_cycles,
                limit: total_limit,
            });
        }
        completions.push(cur);
        latencies.push(cur - arrival);
    }

    tally.busy_cycles = busy_cycles;
    tally.partial_packets = latencies.len() as u64;
    Ok(tally)
}
