//! Batched struct-of-arrays evaluation of signature-pure runs.
//!
//! The scalar engine walks packets one at a time, paying per packet for
//! dispatch hashing, memo lookups, and the stage loop even when every
//! stage's cost is a pure function of (executing unit, payload length).
//! This module evaluates such runs columnwise instead:
//!
//! 1. **Ingest** — the trace is materialized into row + column arenas
//!    (arrival cycles with the monotonicity clamp, dispatch thread,
//!    effective payload length after truncation faults).
//! 2. **Classify** — threads are grouped into *cost-equivalence unit
//!    groups* (units whose cost model, FPU, residence CTM latency, and
//!    per-table-region latencies agree produce identical stage costs),
//!    and each packet maps to a `(group, payload length)` class. Each
//!    class's per-stage costs are computed once, by the exact
//!    [`stage_cost`] the scalar path uses — the memo is consulted per
//!    unique length, not per packet.
//! 3. **Merge** — a tight sequential recurrence replays the ingress
//!    queue, per-thread `free_at` chains, and both watchdog limits in
//!    packet order, emitting completions and latencies.
//!
//! With [`crate::SimConfig::islands`], step 3's per-thread start/finish
//! chains are computed island-parallel first: threads only interact
//! through the ingress queue and the run-total watchdog, and both are
//! verified in the sequential merge afterwards, so the parallel phase
//! is exact whenever the merge accepts it.
//!
//! **Fidelity contract**: every result this module produces is
//! bit-identical to the scalar loop. Saturating per-packet sums of
//! non-negative costs equal `min(true_sum, u64::MAX)` independent of
//! association, so per-class totals replayed per packet are exact; any
//! condition that breaks the closed form — an ingress-queue overflow
//! drop (which skips a thread's `free_at` update), or cycle counts near
//! the `u64` saturation region — makes [`run_batched`] return
//! `Ok(None)` and the engine replays the scalar loop from the same
//! rows. Falling back is always safe; completing the batch is only done
//! when it is provably exact.

use crate::engine::{mix, stage_cost, AccelRt, SimError, TableRt, ThreadRt};
use crate::fault::{FaultPlan, TRUNCATED_PAYLOAD_BYTES};
use crate::memory::MemorySim;
use crate::program::NicProgram;
use crate::watchdog::{Watchdog, DEADLINE_STRIDE};
use clara_lnic::{Lnic, MemId, UnitId};
use clara_workload::TracePacket;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Sentinel class ids for statically dropped rows.
const CLASS_CORRUPT: u32 = u32::MAX;
const CLASS_OFFLINE: u32 = u32::MAX - 1;

/// Finish times are only trusted while far from the saturation region:
/// below this bound, plain and saturating u64 adds agree, so the
/// per-class closed form equals the scalar per-stage chain.
const SAFE_CYCLES: u128 = 1 << 63;

/// Column arenas and class tables, retained across runs by
/// [`crate::SimScratch`].
#[derive(Default)]
pub(crate) struct BatchScratch {
    /// Arrival cycle per row (monotonicity clamp already applied).
    arrivals: Vec<u64>,
    /// Dispatch thread per row (valid only for classed rows).
    tids: Vec<u32>,
    /// Class id per row, or a `CLASS_*` drop sentinel.
    class_of: Vec<u32>,
    /// Unique effective payload lengths, in first-encounter order.
    lens: Vec<u64>,
    /// Cost-equivalence group per thread.
    tid_group: Vec<u32>,
    /// Representative `(unit, ctm)` per group.
    group_reps: Vec<(UnitId, Option<MemId>)>,
    /// `(unit index, group)` memo while grouping.
    unit_groups: Vec<(usize, u32)>,
    /// `(signature, group)` memo while grouping.
    signatures: Vec<(String, u32)>,
    /// Per-class costs, indexed `len_idx * group_count + group`.
    classes: Vec<ClassCost>,
    /// Completed packets per class, for the stage-total closed form.
    class_count: Vec<u64>,
    /// Island id per thread (islands mode).
    tid_island: Vec<u32>,
    /// Per-row start/finish columns (islands mode).
    starts: Vec<u64>,
    fins: Vec<u64>,
}

/// Cost of one `(unit group, payload length)` class.
#[derive(Default, Clone)]
struct ClassCost {
    computed: bool,
    /// Per-stage costs from the exact scalar `stage_cost`.
    per_stage: Vec<u64>,
    /// True (unsaturated) ingress + stages + egress total.
    total: u128,
    /// First stage whose saturating running sum crossed the per-packet
    /// watchdog limit, with the sum at that point.
    trip: Option<(u32, u64)>,
    /// The saturating chain diverged from the true sum without
    /// tripping: only possible with a disabled per-packet limit, and
    /// the closed form no longer holds — force the scalar fallback.
    risk: bool,
}

/// Everything one batched run needs, borrowed from the engine's setup.
pub(crate) struct BatchRun<'a> {
    pub nic: &'a Lnic,
    pub prog: &'a NicProgram,
    pub faults: &'a FaultPlan,
    pub watchdog: &'a Watchdog,
    pub rows: &'a [TracePacket],
    pub emem: Option<MemId>,
    pub fc_engine_cycles: u64,
    pub offline_required: bool,
    pub ingress_lat: u64,
    pub egress_lat: u64,
    pub ingress_capacity: usize,
    pub stage_stalls: &'a [u64],
    pub freq: f64,
    pub pkt_limit: u64,
    pub total_limit: u64,
    pub use_islands: bool,
    pub mem: &'a mut MemorySim,
    pub tables: &'a mut Vec<TableRt>,
    pub accels: &'a mut [Option<AccelRt>; 4],
    pub threads: &'a mut [ThreadRt],
    pub pending: &'a mut BinaryHeap<Reverse<u64>>,
    pub latencies: &'a mut Vec<u64>,
    pub completions: &'a mut Vec<u64>,
    pub stage_totals: &'a mut [u64],
    pub fc_hits: &'a mut u64,
    pub fc_misses: &'a mut u64,
    pub scratch: &'a mut BatchScratch,
    pub thread_island: &'a [usize],
    pub island_busy: &'a mut [u64],
    pub instrumented: bool,
}

/// Counters a completed batch hands back to the engine's epilogue.
#[derive(Default)]
pub(crate) struct BatchTally {
    pub offered: usize,
    pub accel_drops: usize,
    pub corrupt_drops: usize,
    pub truncated: usize,
    pub busy_cycles: u64,
    pub batch_packets: u64,
    pub island_packets: u64,
}

/// A unit's cost signature: every per-unit input [`stage_cost`] can
/// read on an NPU stage. Units with equal signatures produce equal
/// stage costs for every (stage, payload length), so one representative
/// computation covers the whole group.
fn unit_signature(
    nic: &Lnic,
    mem: &MemorySim,
    tables: &[TableRt],
    unit: UnitId,
    ctm: Option<MemId>,
    emem: Option<MemId>,
) -> String {
    let u = nic.unit(unit);
    let mut s = format!("{:?}|fpu:{}", u.cost, u.has_fpu);
    match ctm {
        Some(c) => {
            s += &format!("|ctm:{}:{}", mem.raw_latency(unit, c), mem.bulk_per_byte(c))
        }
        None => s += "|ctm:-",
    }
    if let Some(e) = emem {
        s += &format!("|emem:{}:{}", mem.raw_latency(unit, e), mem.bulk_per_byte(e));
    }
    for t in tables.iter() {
        s += &format!("|t:{}", mem.raw_latency(unit, t.mem));
    }
    s
}

/// Run the batched kernel over ingested rows. `Ok(Some(tally))` means
/// the arenas hold a completed, exact run; `Ok(None)` means the kernel
/// refused and the caller must replay the scalar loop; `Err` is the
/// same error the scalar loop would have returned.
pub(crate) fn run_batched(run: BatchRun<'_>) -> Result<Option<BatchTally>, SimError> {
    let BatchRun {
        nic,
        prog,
        faults,
        watchdog,
        rows,
        emem,
        fc_engine_cycles,
        offline_required,
        ingress_lat,
        egress_lat,
        ingress_capacity,
        stage_stalls,
        freq,
        pkt_limit,
        total_limit,
        use_islands,
        mem,
        tables,
        accels,
        threads,
        pending,
        latencies,
        completions,
        stage_totals,
        fc_hits,
        fc_misses,
        scratch,
        thread_island,
        island_busy,
        instrumented,
    } = run;

    // ---- Phase 0: cost-equivalence unit groups --------------------------
    scratch.tid_group.clear();
    scratch.group_reps.clear();
    scratch.unit_groups.clear();
    scratch.signatures.clear();
    for t in threads.iter() {
        let g = match scratch.unit_groups.iter().find(|(u, _)| *u == t.unit.0) {
            Some(&(_, g)) => g,
            None => {
                let sig = unit_signature(nic, mem, tables, t.unit, t.ctm, emem);
                let g = match scratch.signatures.iter().find(|(s, _)| *s == sig) {
                    Some(&(_, g)) => g,
                    None => {
                        let g = scratch.group_reps.len() as u32;
                        scratch.group_reps.push((t.unit, t.ctm));
                        scratch.signatures.push((sig, g));
                        g
                    }
                };
                scratch.unit_groups.push((t.unit.0, g));
                g
            }
        };
        scratch.tid_group.push(g);
    }
    let group_count = scratch.group_reps.len();

    // ---- Phase 1: columns + per-class costs -----------------------------
    scratch.arrivals.clear();
    scratch.tids.clear();
    scratch.class_of.clear();
    scratch.lens.clear();
    scratch.classes.clear();
    let n_threads = threads.len() as u64;
    let mut last_arrival = 0u64;
    let mut truncated = 0usize;
    for (idx, tp) in rows.iter().enumerate() {
        // Same conversion and monotonicity clamp as the scalar loop.
        let arrival = ((tp.ts_ns as f64 * freq).round() as u64).max(last_arrival);
        last_arrival = arrival;
        scratch.arrivals.push(arrival);
        if faults.corrupt_every > 0 && (idx as u64 + 1).is_multiple_of(faults.corrupt_every) {
            scratch.tids.push(0);
            scratch.class_of.push(CLASS_CORRUPT);
            continue;
        }
        if offline_required {
            scratch.tids.push(0);
            scratch.class_of.push(CLASS_OFFLINE);
            continue;
        }
        let flow_hash = tp.spec.flow.hash64();
        let tid = (mix(flow_hash ^ 0x5a5a) % n_threads) as usize;
        scratch.tids.push(tid as u32);
        let mut len = tp.spec.payload_len as u64;
        if faults.truncate_every > 0 && (idx as u64 + 1).is_multiple_of(faults.truncate_every) {
            truncated += 1;
            len = len.min(TRUNCATED_PAYLOAD_BYTES);
        }
        let len_idx = match scratch.lens.iter().position(|&l| l == len) {
            Some(i) => i,
            None => {
                scratch.lens.push(len);
                scratch
                    .classes
                    .resize_with(scratch.lens.len() * group_count, ClassCost::default);
                scratch.lens.len() - 1
            }
        };
        let cid = len_idx * group_count + scratch.tid_group[tid] as usize;
        if !scratch.classes[cid].computed {
            // First encounter: compute per-stage costs through the exact
            // scalar path. The NPU arm of `stage_cost` never reads the
            // stage start, and eligibility guarantees every stage is an
            // NPU stage, so a zero start is exact. Addresses derive from
            // this packet's flow hash and payload seed; uncached-region
            // access cost is address-free, so any class member yields
            // the same costs.
            let (unit, ctm) = scratch.group_reps[scratch.tid_group[tid] as usize];
            let mut per_stage = Vec::with_capacity(prog.stages.len());
            for (si, stage) in prog.stages.iter().enumerate() {
                per_stage.push(stage_cost(
                    nic,
                    mem,
                    tables,
                    accels,
                    stage,
                    unit,
                    ctm,
                    0,
                    len,
                    0,
                    flow_hash,
                    tp.spec.payload_seed,
                    emem,
                    fc_hits,
                    fc_misses,
                    fc_engine_cycles,
                    stage_stalls[si],
                    None,
                )?);
            }
            let mut chain = 0u64;
            let mut sum = 0u128;
            let mut trip = None;
            for (si, &c) in per_stage.iter().enumerate() {
                chain = chain.saturating_add(c);
                sum += c as u128;
                if trip.is_none() && chain > pkt_limit {
                    trip = Some((si as u32, chain));
                }
            }
            scratch.classes[cid] = ClassCost {
                computed: true,
                risk: trip.is_none() && chain as u128 != sum,
                total: ingress_lat as u128 + sum + egress_lat as u128,
                per_stage,
                trip,
            };
        }
        if scratch.classes[cid].risk {
            return Ok(None);
        }
        scratch.class_of.push(cid as u32);
    }

    // ---- Phase 2 (islands mode): parallel per-thread chains -------------
    // Threads only interact through the ingress queue (verified in the
    // sequential merge; any overflow forces the scalar fallback) and the
    // watchdogs (replayed in the merge), so per-thread start/finish
    // recurrences are island-independent and exact.
    let mut islands_ran = false;
    if use_islands {
        scratch.tid_island.clear();
        for t in threads.iter() {
            scratch.tid_island.push(nic.unit(t.unit).island.unwrap_or(0) as u32);
        }
        let n_islands = scratch.tid_island.iter().copied().max().map_or(0, |m| m + 1);
        if n_islands > 1 {
            scratch.starts.clear();
            scratch.starts.resize(rows.len(), 0);
            scratch.fins.clear();
            scratch.fins.resize(rows.len(), 0);
            let arrivals = &scratch.arrivals;
            let tids = &scratch.tids;
            let class_of = &scratch.class_of;
            let classes = &scratch.classes;
            let tid_island = &scratch.tid_island;
            let parts = std::thread::scope(|s| {
                let workers: Vec<_> = (0..n_islands)
                    .map(|isl| {
                        s.spawn(move || {
                            let mut free_at = vec![0u64; tid_island.len()];
                            let mut out: Vec<(u32, u64, u64)> = Vec::new();
                            let mut overflow = false;
                            for idx in 0..class_of.len() {
                                if class_of[idx] >= CLASS_OFFLINE {
                                    continue;
                                }
                                let tid = tids[idx] as usize;
                                if tid_island[tid] != isl {
                                    continue;
                                }
                                let start = arrivals[idx].max(free_at[tid]);
                                let fin =
                                    start as u128 + classes[class_of[idx] as usize].total;
                                if fin >= SAFE_CYCLES {
                                    overflow = true;
                                    break;
                                }
                                free_at[tid] = fin as u64;
                                out.push((idx as u32, start, fin as u64));
                            }
                            (out, overflow)
                        })
                    })
                    .collect();
                workers.into_iter().map(|w| w.join()).collect::<Vec<_>>()
            });
            for part in parts {
                let Ok((out, overflow)) = part else {
                    return Ok(None); // a worker panicked: replay scalar
                };
                if overflow {
                    return Ok(None);
                }
                for (idx, start, fin) in out {
                    scratch.starts[idx as usize] = start;
                    scratch.fins[idx as usize] = fin;
                }
            }
            islands_ran = true;
        }
    }

    // ---- Phase 3: sequential merge --------------------------------------
    scratch.class_count.clear();
    scratch.class_count.resize(scratch.classes.len(), 0);
    pending.clear();
    let mut tally = BatchTally { offered: rows.len(), truncated, ..BatchTally::default() };
    let mut busy_cycles = 0u64;
    for idx in 0..rows.len() {
        if idx % DEADLINE_STRIDE == 0 && watchdog.expired() {
            return Err(SimError::TimedOut);
        }
        let cid = scratch.class_of[idx];
        if cid == CLASS_CORRUPT {
            tally.corrupt_drops += 1;
            continue;
        }
        if cid == CLASS_OFFLINE {
            tally.accel_drops += 1;
            continue;
        }
        let arrival = scratch.arrivals[idx];
        while pending.peek().is_some_and(|&Reverse(s)| s <= arrival) {
            pending.pop();
        }
        if pending.len() >= ingress_capacity {
            // An overflow drop skips the thread's `free_at` update, which
            // the island chains (and the class closed form under later
            // arrivals) did not model: replay the scalar loop instead.
            return Ok(None);
        }
        let tid = scratch.tids[idx] as usize;
        let cls = &scratch.classes[cid as usize];
        if let Some((si, cycles)) = cls.trip {
            return Err(SimError::Watchdog {
                packet: idx,
                stage: prog.stages[si as usize].name.clone(),
                cycles,
                limit: pkt_limit,
            });
        }
        let (start, fin) = if islands_ran {
            (scratch.starts[idx], scratch.fins[idx])
        } else {
            let start = arrival.max(threads[tid].free_at);
            let fin = start as u128 + cls.total;
            if fin >= SAFE_CYCLES {
                return Ok(None);
            }
            (start, fin as u64)
        };
        if start > arrival {
            pending.push(Reverse(start));
        }
        threads[tid].free_at = fin;
        let service = fin - start;
        if instrumented {
            island_busy[thread_island[tid]] += service;
        }
        busy_cycles = busy_cycles.saturating_add(service);
        if busy_cycles > total_limit {
            return Err(SimError::Watchdog {
                packet: idx,
                stage: "<run total>".into(),
                cycles: busy_cycles,
                limit: total_limit,
            });
        }
        scratch.class_count[cid as usize] += 1;
        completions.push(fin);
        latencies.push(fin - arrival);
    }

    // Stage totals via the per-class closed form: a saturating chain of
    // non-negative u64 adds equals min(true sum, u64::MAX) regardless of
    // association, so count × cost accumulated in u128 and clamped is
    // bit-identical to the scalar per-packet accumulation.
    for (cid, &count) in scratch.class_count.iter().enumerate() {
        if count == 0 {
            continue;
        }
        for (si, &c) in scratch.classes[cid].per_stage.iter().enumerate() {
            let sum = stage_totals[si] as u128 + c as u128 * count as u128;
            stage_totals[si] = u64::try_from(sum).unwrap_or(u64::MAX);
        }
    }

    tally.busy_cycles = busy_cycles;
    tally.batch_packets = latencies.len() as u64;
    if islands_ran {
        tally.island_packets = tally.batch_packets;
    }
    Ok(Some(tally))
}
