//! The simulation engine: packets → threads → stages → cycle costs,
//! with shared caches, accelerator queues, and ingress queueing.
//!
//! Packets are processed in arrival order with resource reservations:
//! each packet takes the earliest-available NPU thread (run-to-completion,
//! as on the Netronome), accelerator calls reserve a single-server queue
//! (head-of-line blocking emerges under load), and every memory access
//! goes through the shared cache state — so flow skew, working-set size,
//! and packet rate all shape the measured latencies, exactly the factors
//! §2.1 lists as making offloaded performance hard to predict.

use crate::costcache::{CostCache, CostView};
use crate::fault::{FaultPlan, TRUNCATED_PAYLOAD_BYTES};
use crate::memory::{Cache, MemorySim};
use crate::program::{BytesSpec, MicroOp, NicProgram, Stage, StageUnit};
use crate::watchdog::{Watchdog, DEADLINE_STRIDE};
use clara_lnic::{AccelCost, AccelKind, ComputeClass, Lnic, MemId, MemKind, UnitId};
use clara_telemetry::{AccelStats, IslandStats, MemLevelStats, SimStats, StageTimeline};
use clara_workload::{Trace, TracePacket};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::Arc;

/// Packets larger than this have their payload tail spilled to EMEM
/// (paper §3.2: "packets smaller than 1 kB will reside in the CTM
/// entirely, but the tails of larger packets will spill to the EMEM").
const CTM_RESIDENCY_BYTES: u64 = 1024;

/// Errors from simulation setup or supervision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The program failed validation.
    BadProgram(String),
    /// A table names a memory region the NIC does not have.
    UnknownRegion(String),
    /// A stage needs an accelerator the NIC does not have.
    MissingAccelerator(String),
    /// The NIC has no general-purpose cores.
    NoThreads,
    /// A packet blew the watchdog's cycle budget — the program asked for
    /// effectively unbounded work (see [`crate::Watchdog`]).
    Watchdog {
        /// Index of the offending packet in the trace.
        packet: usize,
        /// Stage whose cost crossed the limit.
        stage: String,
        /// Cycles the packet had consumed when tripped (saturating).
        cycles: u64,
        /// The limit it crossed.
        limit: u64,
    },
    /// The watchdog's wall-clock deadline passed (or the run was
    /// cancelled) before the trace finished.
    TimedOut,
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimError::BadProgram(m) => write!(f, "invalid program: {m}"),
            SimError::UnknownRegion(r) => write!(f, "unknown memory region `{r}`"),
            SimError::MissingAccelerator(k) => write!(f, "NIC lacks accelerator `{k}`"),
            SimError::NoThreads => write!(f, "NIC has no general-purpose threads"),
            SimError::Watchdog { packet, stage, cycles, limit } => write!(
                f,
                "watchdog: packet {packet} consumed {cycles} cycles in stage `{stage}` \
                 (limit {limit})"
            ),
            SimError::TimedOut => write!(f, "simulation deadline exceeded"),
        }
    }
}

impl std::error::Error for SimError {}

/// Measured results of one simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Packets offered by the trace.
    pub packets: usize,
    /// Packets that completed processing.
    pub completed: usize,
    /// Packets dropped at the ingress queue (overflow).
    pub dropped: usize,
    /// Packets dropped because a required accelerator was offline
    /// (fault injection).
    pub accel_drops: usize,
    /// Packets dropped as corrupt at ingress (fault injection).
    pub corrupt_drops: usize,
    /// Packets that arrived truncated but were still processed
    /// (fault injection).
    pub truncated: usize,
    /// Mean per-packet latency in NIC cycles.
    pub avg_latency_cycles: f64,
    /// Median latency in cycles.
    pub p50_latency_cycles: f64,
    /// 99th-percentile latency in cycles.
    pub p99_latency_cycles: f64,
    /// Worst observed latency in cycles.
    pub max_latency_cycles: f64,
    /// Mean latency in nanoseconds (at the NIC clock).
    pub avg_latency_ns: f64,
    /// Completed packets per second of simulated time.
    pub achieved_pps: f64,
    /// Mean cycles spent in each stage (same order as the program).
    pub per_stage_cycles: Vec<(String, f64)>,
    /// Flow-cache (hits, misses) summed over tables fronted by it.
    pub flow_cache: (u64, u64),
    /// EMEM cache (hits, misses), if the NIC has one.
    pub emem_cache: Option<(u64, u64)>,
    /// Total energy in millijoules (active cycles × nJ/cycle).
    pub energy_mj: f64,
    /// Raw per-packet latencies in cycles, arrival order.
    pub latencies: Vec<u64>,
}

pub(crate) struct TableRt {
    pub(crate) mem: MemId,
    pub(crate) base: u64,
    pub(crate) entry_bytes: u64,
    pub(crate) entries: u64,
    /// Flow-cache front: entry-granular set-associative state.
    pub(crate) fc: Option<Cache>,
}

pub(crate) struct ThreadRt {
    pub(crate) unit: UnitId,
    /// Packet-residence CTM for this thread's island, resolved once at
    /// setup (the seed re-ran a `format!("ctm{i}")` + name scan for
    /// every NPU stage of every packet).
    pub(crate) ctm: Option<MemId>,
    pub(crate) free_at: u64,
}

/// One accelerator engine's runtime state, held in a fixed array
/// indexed by [`AccelKind`] discriminant — no hashing on dispatch.
pub(crate) struct AccelRt {
    /// Service curve from the unit's cost model, if it declares one.
    curve: Option<AccelCost>,
    /// When the single-server queue drains (head-of-line blocking).
    free_at: u64,
}

/// All four accelerator kinds, in discriminant order.
const ACCEL_KINDS: [AccelKind; 4] =
    [AccelKind::Checksum, AccelKind::Crypto, AccelKind::FlowCache, AccelKind::Lpm];

/// Engine tuning knobs, mirroring `SolverConfig` on the solve side: the
/// default is the fast path, and the seed-exact path stays one call away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Memoize stage costs by signature (stage, placement, payload
    /// length). Stages whose cost can depend on shared mutable state —
    /// caches, the flow cache, accelerator queues — are never memoized,
    /// so results are bit-identical to the exact path either way.
    pub memoize: bool,
    /// Evaluate signature-pure runs through the batched struct-of-arrays
    /// kernel (the `batch` module): stage costs are computed once per
    /// (cost-equivalent unit, payload length) class over column arenas
    /// instead of per packet. Only engaged when *every* stage classifies
    /// Fixed/PayloadPure; any condition the kernel cannot replay exactly
    /// (live stages, cache-thrash faults, a stage timeline, queue
    /// overflow) falls back to the scalar loop, so results are
    /// bit-identical either way.
    pub batch: bool,
    /// Within a batched run, compute the per-thread start/finish
    /// recurrences island-parallel (threads only interact through the
    /// ingress queue and run-total watchdog, both replayed in a
    /// sequential merge). Off by default until a sweep opts in; the
    /// identity corpus pins islands-on == islands-off == exact.
    pub islands: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig { memoize: true, batch: true, islands: false }
    }
}

impl SimConfig {
    /// The seed-equivalent configuration: every stage cost recomputed
    /// from scratch for every packet. Kept as the fidelity baseline
    /// (the bench's identity check runs memoized vs. exact).
    pub fn exact() -> Self {
        SimConfig { memoize: false, batch: false, islands: false }
    }

    /// The default fast path with island-parallel DES enabled on top.
    pub fn islands() -> Self {
        SimConfig { islands: true, ..SimConfig::default() }
    }
}

/// Reusable arenas for repeated simulation runs.
///
/// A sweep of N runs performs O(1) heap allocations per run instead of
/// O(packets): latencies, completions, percentile scratch, per-thread
/// state, the pending-start heap, and the memo tables all retain their
/// capacity across [`simulate_streamed`] calls. A fresh `SimScratch` is
/// equivalent to a reused one — reuse never changes results.
#[derive(Default)]
pub struct SimScratch {
    latencies: Vec<u64>,
    completions: Vec<u64>,
    select: Vec<u64>,
    stage_totals: Vec<u64>,
    pending: BinaryHeap<Reverse<u64>>,
    threads: Vec<ThreadRt>,
    classes: Vec<StageClass>,
    fixed_memo: HashMap<(u32, u32), u64>,
    payload_memo: HashMap<(u32, u32, u64), u64>,
    /// Ingested trace rows for the batched path (also the replay source
    /// when the batch kernel falls back to the scalar loop).
    rows: Vec<TracePacket>,
    /// Column arenas and class tables for [`crate::batch`].
    batch: crate::batch::BatchScratch,
    /// Shared stage-cost cache, consulted when the run-local memo
    /// misses. `None` (the default) keeps the per-run memo as the only
    /// layer — the escape hatch for callers that must not share.
    shared_costs: Option<Arc<CostCache>>,
}

impl SimScratch {
    /// An empty scratch; arenas grow on first use and are kept after.
    pub fn new() -> Self {
        SimScratch::default()
    }

    /// Per-packet latencies (cycles, arrival order) of the last
    /// [`simulate_streamed`] run — left here rather than copied into
    /// [`SimResult::latencies`] so the streamed path stays allocation-free.
    pub fn latencies(&self) -> &[u64] {
        &self.latencies
    }

    /// Attach a shared [`CostCache`]: subsequent runs resolve pure stage
    /// costs through it (keyed by the run's post-fault fingerprint)
    /// whenever the run-local memo misses, and publish what they compute.
    /// Sharing one cache across sweep cells, fan-out workers, and serve
    /// sessions is bit-identical to running without it — the cache only
    /// replays values the exact path produced under an equal fingerprint.
    pub fn attach_cost_cache(&mut self, cache: Arc<CostCache>) {
        self.shared_costs = Some(cache);
    }

    /// Detach the shared cache, restoring the per-run-memo-only path.
    pub fn detach_cost_cache(&mut self) -> Option<Arc<CostCache>> {
        self.shared_costs.take()
    }

    /// The attached shared cache, if any.
    pub fn cost_cache(&self) -> Option<&Arc<CostCache>> {
        self.shared_costs.as_ref()
    }
}

/// Opt-in observation state for one simulation run.
///
/// Instrumentation is strictly *read-only* with respect to simulation
/// state: every counter observes a value the engine computes anyway, so
/// an instrumented run is bit-identical to an uninstrumented one (the
/// `prop_telemetry` suite asserts this over random programs, traces,
/// and fault plans). A successful run overwrites [`Self::stats`] except
/// for `watchdog_trips`, which belongs to the supervising caller (a
/// tripped run returns an error before stats are assembled).
#[derive(Debug, Default)]
pub struct SimInstruments {
    /// Aggregated counters, filled when the run completes.
    pub stats: SimStats,
    /// Per-packet stage timeline, recorded when present.
    pub timeline: Option<StageTimeline>,
}

impl SimInstruments {
    /// Counters only, no timeline.
    pub fn new() -> Self {
        SimInstruments::default()
    }

    /// Counters plus a stage timeline covering the first `packets`
    /// packets of the trace.
    pub fn with_timeline(packets: u64) -> Self {
        SimInstruments { stats: SimStats::default(), timeline: Some(StageTimeline::first(packets)) }
    }
}

/// Observation state for one accelerator's single-server queue.
#[derive(Debug, Default)]
pub(crate) struct AccelProbe {
    calls: u64,
    busy_cycles: u64,
    hol_stall_cycles: u64,
    queue_highwater: u64,
    /// Completion times of calls submitted but not yet drained at the
    /// most recent submission instant.
    inflight: VecDeque<u64>,
}

/// How a stage's cost may vary across packets, decided once per run
/// (after fault application — e.g. disabling the EMEM cache makes its
/// tables signature-pure).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum StageClass {
    /// Cost depends only on the executing unit: memo key (stage, unit).
    Fixed,
    /// Cost additionally depends on the (possibly truncated) payload
    /// length: memo key (stage, unit, payload_len).
    PayloadPure,
    /// Cost can read or write shared mutable state (a cache, the flow
    /// cache, an accelerator queue): recomputed for every packet.
    Live,
}

/// How a single NPU micro-op's cost may vary across packets — the
/// op-granular refinement of [`StageClass`] that partial-run batching
/// needs: a stage whose only live ops are flow-cache table accesses can
/// have its pure ops costed per class and only the flow-cache branch
/// replayed per packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OpClass {
    /// Cost depends only on the executing unit.
    Fixed,
    /// Cost additionally depends on the (truncated) payload length.
    PayloadPure,
    /// A table access through a flow-cache front over an *uncached*
    /// backing region: cost is one of two per-(unit, table) constants,
    /// decided by the flow cache's hit/miss state.
    FlowCacheOnly,
    /// Reads or writes shared mutable state beyond the flow cache
    /// (a memory-level cache, an accelerator queue).
    Live,
}

/// Classify one NPU op. This is the single source of truth the stage
/// classifier folds over, so the partial kernel's per-op plan can never
/// disagree with the per-stage classes.
pub(crate) fn classify_op(op: &MicroOp, tables: &[TableRt], mem: &MemorySim) -> OpClass {
    match op {
        MicroOp::Compute { .. }
        | MicroOp::ParseHeader
        | MicroOp::MetadataMod { .. }
        | MicroOp::Hash { .. }
        | MicroOp::FloatOps { .. } => OpClass::Fixed,
        MicroOp::TableLookup { table } | MicroOp::TableWrite { table } => {
            let t = &tables[*table];
            if mem.has_cache(t.mem) {
                OpClass::Live
            } else if t.fc.is_none() {
                OpClass::Fixed
            } else {
                OpClass::FlowCacheOnly
            }
        }
        MicroOp::CounterUpdate { table } | MicroOp::LinearScan { table } => {
            if mem.has_cache(tables[*table].mem) {
                OpClass::Live
            } else {
                OpClass::Fixed
            }
        }
        // Payload streaming and software checksums read the packet's
        // residence (raw latency + bulk rate, never a cache), so they
        // are pure in (unit, payload_len). A transition table adds a
        // per-byte access, pure only if its region is uncached.
        MicroOp::StreamPayload { table: None, .. } | MicroOp::ChecksumSw => OpClass::PayloadPure,
        MicroOp::StreamPayload { table: Some(t), .. } => {
            if mem.has_cache(tables[*t].mem) {
                OpClass::Live
            } else {
                OpClass::PayloadPure
            }
        }
        MicroOp::AccelCall { .. } => OpClass::Live,
    }
}

/// Classify a stage for memoization. A stage is memoized only if *every*
/// op in it is signature-pure; a single live op (flow-cache accesses
/// included — their hit/miss state is shared) makes the whole stage
/// live. Accesses to uncached regions cost `raw + bulk·(bytes − 64)`
/// regardless of address or history, so table ops are pure exactly when
/// the table has no flow-cache front and its region has no cache.
fn classify_stage(stage: &Stage, tables: &[TableRt], mem: &MemorySim) -> StageClass {
    if !matches!(stage.unit, StageUnit::Npu) {
        return StageClass::Live; // accelerator queues are stateful
    }
    let mut class = StageClass::Fixed;
    for op in &stage.ops {
        let op_class = match classify_op(op, tables, mem) {
            OpClass::Fixed => StageClass::Fixed,
            OpClass::PayloadPure => StageClass::PayloadPure,
            OpClass::FlowCacheOnly | OpClass::Live => StageClass::Live,
        };
        class = class.max(op_class);
    }
    class
}

/// Render every input a *pure* stage cost can read — after fault
/// application — into a compact `u64` token stream: the interning key
/// for [`CostCache`] views.
///
/// Equal fingerprints must imply equal costs for every
/// `(stage, unit[, payload_len])` signature, so the encoding covers:
/// the program (stages, ops, table geometry), each unit's cost model,
/// FPU, and island (the island plus region names determine CTM
/// residence), each region's name, post-fault cache presence, bulk
/// rate, and per-unit raw latency, the resolved per-table runtime
/// geometry including post-fault flow-cache presence, and the per-stage
/// fault stalls. Table base addresses are deliberately absent: pure
/// classification already guarantees every access is to an uncached
/// region, whose cost is address-free. NF/stage/table names are absent
/// too — no cost reads them. Every list is length-prefixed and emitted
/// in a fixed traversal order, so distinct configurations cannot
/// produce equal streams. The binary form replaces an earlier formatted
/// string: fingerprints are built once per run on the sweep hot path,
/// where `fmt` machinery cost more than the batched kernel itself.
fn run_fingerprint(
    nic: &Lnic,
    prog: &NicProgram,
    mem: &MemorySim,
    tables: &[TableRt],
    emem: Option<MemId>,
    stage_stalls: &[u64],
    fc_engine_cycles: u64,
) -> Vec<u64> {
    const NONE: u64 = u64::MAX;
    let mut s: Vec<u64> = Vec::with_capacity(768);
    // Encode an optional index where the valid range can never reach
    // u64::MAX (unit/table/island counts are tiny).
    let opt = |v: Option<usize>| v.map_or(NONE, |x| x as u64);

    s.push(prog.stages.len() as u64);
    for stage in &prog.stages {
        match stage.unit {
            StageUnit::Npu => s.push(NONE),
            StageUnit::Accel(kind) => s.push(kind as u64),
        }
        s.push(stage.ops.len() as u64);
        for op in &stage.ops {
            match *op {
                MicroOp::Compute { cycles } => s.extend([0, cycles]),
                MicroOp::ParseHeader => s.push(1),
                MicroOp::MetadataMod { count } => s.extend([2, count]),
                MicroOp::Hash { count } => s.extend([3, count]),
                MicroOp::TableLookup { table } => s.extend([4, table as u64]),
                MicroOp::TableWrite { table } => s.extend([5, table as u64]),
                MicroOp::CounterUpdate { table } => s.extend([6, table as u64]),
                MicroOp::LinearScan { table } => s.extend([7, table as u64]),
                MicroOp::StreamPayload { table, loop_overhead } => {
                    s.extend([8, opt(table), loop_overhead])
                }
                MicroOp::ChecksumSw => s.push(9),
                MicroOp::AccelCall { bytes } => {
                    s.push(10);
                    match bytes {
                        BytesSpec::Payload => s.push(0),
                        BytesSpec::Frame => s.push(1),
                        BytesSpec::Fixed(n) => s.extend([2, n]),
                    }
                }
                MicroOp::FloatOps { count } => s.extend([11, count]),
            }
        }
    }
    s.push(opt(emem.map(|e| e.0)));
    s.push(fc_engine_cycles);
    s.push(stage_stalls.len() as u64);
    s.extend_from_slice(stage_stalls);
    s.push(nic.units().len() as u64);
    for u in nic.units() {
        let c = &u.cost;
        s.extend([
            c.alu,
            c.mul,
            c.div,
            c.branch,
            c.metadata_mod,
            c.hash,
            c.parse_header,
            c.float_native,
            c.float_emulation,
            c.stream_per_byte.to_bits(),
        ]);
        match c.accel {
            None => s.push(NONE),
            Some(a) => {
                s.extend([a.base, a.per_byte.to_bits(), a.queue_capacity as u64]);
            }
        }
        s.push(u64::from(u.has_fpu));
        s.push(opt(u.island));
    }
    s.push(nic.memories().len() as u64);
    for (mi, m) in nic.memories().iter().enumerate() {
        let id = MemId(mi);
        // Region names resolve CTM residence and table placement, so
        // they are part of the key: length-prefixed, bytes packed
        // little-endian eight to a token.
        let name = m.name.as_bytes();
        s.push(name.len() as u64);
        for chunk in name.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            s.push(u64::from_le_bytes(word));
        }
        s.push(mem.bulk_per_byte(id).to_bits());
        s.push(u64::from(mem.has_cache(id)));
        for ui in 0..nic.units().len() {
            s.push(mem.raw_latency(UnitId(ui), id));
        }
    }
    s.push(tables.len() as u64);
    for t in tables {
        s.extend([t.mem.0 as u64, t.entry_bytes, t.entries, u64::from(t.fc.is_some())]);
    }
    s
}

/// Run `prog` over `trace` on `nic` with healthy hardware.
pub fn simulate(nic: &Lnic, prog: &NicProgram, trace: &Trace) -> Result<SimResult, SimError> {
    simulate_with_faults(nic, prog, trace, &FaultPlan::none())
}

/// Run `prog` over `trace` on `nic` under a [`FaultPlan`].
///
/// Faults degrade the run instead of failing it: unserviceable packets are
/// dropped and counted ([`SimResult::accel_drops`],
/// [`SimResult::corrupt_drops`], [`SimResult::dropped`]), survivors see
/// the degraded latency. Errors are reserved for setup problems (an
/// invalid program, a region the NIC lacks, zero usable threads).
pub fn simulate_with_faults(
    nic: &Lnic,
    prog: &NicProgram,
    trace: &Trace,
    faults: &FaultPlan,
) -> Result<SimResult, SimError> {
    simulate_supervised(nic, prog, trace, faults, &Watchdog::default())
}

/// Run `prog` over `trace` on `nic` under a [`FaultPlan`] and a
/// [`Watchdog`].
///
/// The watchdog turns unbounded work into errors instead of hangs: a
/// packet whose stages exceed the per-packet cycle cap (or push the run
/// past the total cap) ends the run with [`SimError::Watchdog`], and an
/// expired wall-clock deadline or cancel token ends it with
/// [`SimError::TimedOut`]. Default caps are far above any legitimate
/// program, so `simulate`/`simulate_with_faults` results are unchanged.
pub fn simulate_supervised(
    nic: &Lnic,
    prog: &NicProgram,
    trace: &Trace,
    faults: &FaultPlan,
    watchdog: &Watchdog,
) -> Result<SimResult, SimError> {
    simulate_configured(nic, prog, trace, faults, watchdog, &SimConfig::default())
}

/// [`simulate_supervised`] with an explicit [`SimConfig`]: the entry
/// point that chooses between the memoized default and
/// [`SimConfig::exact`], the seed-equivalent recompute-everything path.
pub fn simulate_configured(
    nic: &Lnic,
    prog: &NicProgram,
    trace: &Trace,
    faults: &FaultPlan,
    watchdog: &Watchdog,
    config: &SimConfig,
) -> Result<SimResult, SimError> {
    let mut scratch = SimScratch::new();
    let mut r =
        run_sim(nic, prog, trace.iter().cloned(), faults, watchdog, config, &mut scratch, None)?;
    r.latencies = std::mem::take(&mut scratch.latencies);
    Ok(r)
}

/// [`simulate_configured`] with a [`SimInstruments`] attached: the run
/// fills `instruments.stats` (and the timeline, when one is present)
/// while producing a [`SimResult`] bit-identical to the uninstrumented
/// entry points.
#[allow(clippy::too_many_arguments)]
pub fn simulate_instrumented(
    nic: &Lnic,
    prog: &NicProgram,
    trace: &Trace,
    faults: &FaultPlan,
    watchdog: &Watchdog,
    config: &SimConfig,
    instruments: &mut SimInstruments,
) -> Result<SimResult, SimError> {
    let mut scratch = SimScratch::new();
    let mut r = run_sim(
        nic,
        prog,
        trace.iter().cloned(),
        faults,
        watchdog,
        config,
        &mut scratch,
        Some(instruments),
    )?;
    r.latencies = std::mem::take(&mut scratch.latencies);
    Ok(r)
}

/// Run `prog` over a lazily produced packet stream, reusing `scratch`
/// arenas across calls — the sweep hot path: no trace materialization,
/// O(1) allocations per run.
///
/// `packets` must yield arrivals in non-decreasing timestamp order
/// ([`Trace`] iteration and [`clara_workload::TraceStream`] both
/// guarantee this); regressions are clamped to the running maximum,
/// exactly as [`Trace::push`] would have clamped them, so streaming a
/// generator is bit-identical to materializing it first.
///
/// Per-packet latencies are left in the scratch
/// ([`SimScratch::latencies`]); [`SimResult::latencies`] comes back
/// empty so the run allocates nothing per packet.
pub fn simulate_streamed<I>(
    nic: &Lnic,
    prog: &NicProgram,
    packets: I,
    faults: &FaultPlan,
    watchdog: &Watchdog,
    config: &SimConfig,
    scratch: &mut SimScratch,
) -> Result<SimResult, SimError>
where
    I: IntoIterator<Item = TracePacket>,
{
    run_sim(nic, prog, packets.into_iter(), faults, watchdog, config, scratch, None)
}

/// [`simulate_streamed`] with a [`SimInstruments`] attached — the sweep
/// hot path with telemetry: O(1) allocations per run plus whatever the
/// timeline records.
#[allow(clippy::too_many_arguments)]
pub fn simulate_streamed_instrumented<I>(
    nic: &Lnic,
    prog: &NicProgram,
    packets: I,
    faults: &FaultPlan,
    watchdog: &Watchdog,
    config: &SimConfig,
    scratch: &mut SimScratch,
    instruments: &mut SimInstruments,
) -> Result<SimResult, SimError>
where
    I: IntoIterator<Item = TracePacket>,
{
    run_sim(nic, prog, packets.into_iter(), faults, watchdog, config, scratch, Some(instruments))
}

#[allow(clippy::too_many_arguments)]
fn run_sim<I: Iterator<Item = TracePacket>>(
    nic: &Lnic,
    prog: &NicProgram,
    mut packets: I,
    faults: &FaultPlan,
    watchdog: &Watchdog,
    config: &SimConfig,
    scratch: &mut SimScratch,
    mut instruments: Option<&mut SimInstruments>,
) -> Result<SimResult, SimError> {
    prog.validate().map_err(SimError::BadProgram)?;
    let SimScratch {
        latencies,
        completions,
        select,
        stage_totals,
        pending,
        threads,
        classes,
        fixed_memo,
        payload_memo,
        rows,
        batch: batch_scratch,
        shared_costs,
    } = scratch;

    let mut mem = MemorySim::new(nic);

    let emem = nic.memory_named("emem").or_else(|| {
        nic.memories()
            .iter()
            .position(|m| m.kind == MemKind::External)
            .map(MemId)
    });
    if faults.disable_emem_cache {
        if let Some(e) = emem {
            mem.disable_cache(e);
        }
    }

    // Resolve accelerators once; offline engines are simply absent.
    let mut accels: [Option<AccelRt>; 4] = [None, None, None, None];
    for kind in ACCEL_KINDS {
        if faults.is_offline(kind) {
            continue;
        }
        if let Some(&u) = nic.accelerators(kind).first() {
            accels[kind as usize] = Some(AccelRt { curve: nic.unit(u).cost.accel, free_at: 0 });
        }
    }
    // Flow-cache engine probe cost, fixed for the whole run.
    let fc_engine_cycles = accels[AccelKind::FlowCache as usize]
        .as_ref()
        .and_then(|a| a.curve.map(|c| c.service_cycles(0)))
        .unwrap_or(40);
    // Packets whose program calls an offline engine cannot be serviced;
    // they are dropped at ingress (and counted), never a panic. The flow
    // cache is excluded: its loss degrades table lookups instead.
    let offline_required = prog
        .required_accels()
        .iter()
        .any(|&k| faults.is_offline(k) && !nic.accelerators(k).is_empty());

    // Resolve tables.
    let fc_region_capacity = nic
        .memory_named("flowcache-sram")
        .map(|m| nic.memory(m).capacity as u64);
    let mut tables: Vec<TableRt> = Vec::with_capacity(prog.tables.len());
    for cfg in &prog.tables {
        let mem_id = nic
            .memory_named(&cfg.mem)
            .ok_or_else(|| SimError::UnknownRegion(cfg.mem.clone()))?;
        let base = mem.alloc(mem_id, cfg.size_bytes() as u64);
        let fc = if cfg.use_flow_cache && faults.is_offline(AccelKind::FlowCache) {
            // Outage: lookups fall back to the backing memory (degraded
            // latency, not an error).
            None
        } else if cfg.use_flow_cache {
            if accels[AccelKind::FlowCache as usize].is_none() {
                return Err(SimError::MissingAccelerator("flow-cache".into()));
            }
            let cap = fc_region_capacity
                .map(|c| (c / cfg.entry_bytes.max(1) as u64).max(64))
                .unwrap_or(32_768)
                .min(1 << 20);
            // Entry-granular cache: line = 1 "byte" = 1 entry.
            Some(Cache::new(cap as usize, 1, 4))
        } else {
            None
        };
        tables.push(TableRt {
            mem: mem_id,
            base,
            entry_bytes: cfg.entry_bytes.max(1) as u64,
            entries: cfg.entries.max(1),
            fc,
        });
    }

    // Threads. Packet residence is the thread's own-island CTM, falling
    // back to any cluster SRAM; resolve it here, once per unit.
    let fallback_ctm = nic
        .memories()
        .iter()
        .position(|m| m.kind == MemKind::ClusterSram)
        .map(MemId);
    threads.clear();
    // Island → CTM resolution, memoized so the per-unit loop formats no
    // region names (units share a handful of islands).
    let mut island_ctm: Vec<Option<Option<MemId>>> = Vec::new();
    for (i, u) in nic.units().iter().enumerate() {
        if u.class == ComputeClass::GeneralCore {
            let ctm = match u.island {
                Some(isl) => {
                    if isl >= island_ctm.len() {
                        island_ctm.resize(isl + 1, None);
                    }
                    island_ctm[isl]
                        .get_or_insert_with(|| nic.memory_named(&format!("ctm{isl}")))
                        .or(fallback_ctm)
                }
                None => fallback_ctm,
            };
            for _ in 0..u.threads {
                threads.push(ThreadRt { unit: UnitId(i), ctm, free_at: 0 });
            }
        }
    }
    // Fault injection: wedged threads are unavailable for dispatch.
    if faults.dead_threads > 0 {
        let keep = threads.len().saturating_sub(faults.dead_threads);
        threads.truncate(keep);
    }
    if threads.is_empty() {
        return Err(SimError::NoThreads);
    }

    // Observation-only setup. Everything below this block feeds the
    // optional SimInstruments and never flows back into costs, so the
    // uninstrumented path pays a single `is_some()` check per packet.
    let mut probes: Option<[AccelProbe; 4]> =
        instruments.is_some().then(<[AccelProbe; 4]>::default);
    let mut thread_island: Vec<usize> = Vec::new();
    let mut island_busy: Vec<u64> = Vec::new();
    let mut island_threads: Vec<u64> = Vec::new();
    if instruments.is_some() {
        for t in threads.iter() {
            let isl = nic.unit(t.unit).island.unwrap_or(0);
            if isl >= island_busy.len() {
                island_busy.resize(isl + 1, 0);
                island_threads.resize(isl + 1, 0);
            }
            thread_island.push(isl);
            island_threads[isl] += 1;
        }
    }
    // Stage unit labels, precomputed only when a timeline will use them.
    let stage_unit_labels: Vec<String> =
        if instruments.as_ref().is_some_and(|i| i.timeline.is_some()) {
            prog.stages
                .iter()
                .map(|s| match s.unit {
                    StageUnit::Npu => "npu".to_string(),
                    StageUnit::Accel(kind) => kind.to_string(),
                })
                .collect()
        } else {
            Vec::new()
        };

    // Hubs: first hub is ingress, second (if any) egress.
    let ingress = nic.hubs().first();
    let egress = nic.hubs().get(1).or(ingress);
    let ingress_capacity = faults
        .ingress_capacity
        .unwrap_or_else(|| ingress.map(|h| h.queue_capacity).unwrap_or(usize::MAX));

    let freq = nic.freq_ghz;
    let to_cycles = |ns: u64| -> u64 { (ns as f64 * freq).round() as u64 };

    // Fault stalls are per-stage constants; resolve them once.
    let stage_stalls: Vec<u64> =
        prog.stages.iter().map(|s| faults.accel_stall_for(&s.unit)).collect();

    // Memoization classes are decided once per run, after faults have
    // been applied to the memory system (a disabled EMEM cache makes its
    // tables signature-pure). Memo tables are cleared — signatures are
    // only valid within one (nic, program, faults) combination — but keep
    // their capacity.
    classes.clear();
    if config.memoize {
        classes.extend(prog.stages.iter().map(|s| classify_stage(s, &tables, &mem)));
    } else {
        classes.extend(prog.stages.iter().map(|_| StageClass::Live));
    }
    fixed_memo.clear();
    payload_memo.clear();

    // Shared cost-cache view: resolved once per run from the post-fault
    // fingerprint, consulted only when the run-local memo misses. The
    // counters tally *shared-layer* resolutions (a hit is a local miss
    // answered by the cache; a miss had to be computed), so they measure
    // cross-run reuse, not per-packet replays.
    let shared_view: Option<Arc<CostView>> = match shared_costs {
        Some(cache) if classes.iter().any(|c| *c != StageClass::Live) => Some(cache.view(
            &run_fingerprint(nic, prog, &mem, &tables, emem, &stage_stalls, fc_engine_cycles),
        )),
        _ => None,
    };
    let mut memo_hits = 0u64;
    let mut memo_misses = 0u64;

    latencies.clear();
    completions.clear();
    stage_totals.clear();
    stage_totals.resize(prog.stages.len(), 0u64);
    pending.clear();
    let mut dropped = 0usize;
    let mut accel_drops = 0usize;
    let mut corrupt_drops = 0usize;
    let mut truncated = 0usize;
    let mut busy_cycles = 0u64;
    let mut offered = 0usize;
    let mut last_arrival = 0u64;
    let mut fc_hits = 0u64;
    let mut fc_misses = 0u64;
    let pkt_limit = watchdog.packet_limit();
    let total_limit = watchdog.total_limit();

    // Batched struct-of-arrays path: when every stage is signature-pure
    // and nothing per-packet needs the scalar replay (no stage timeline,
    // no per-packet cache thrash), the whole trace is ingested into
    // column arenas and evaluated per (unit-group, payload-length) class
    // instead of per packet. Any run the kernel cannot reproduce exactly
    // falls back to the scalar loop below, replayed over the same rows.
    let mut batch_packets = 0u64;
    let mut island_packets = 0u64;
    let mut partial_packets = 0u64;
    let all_pure = classes.iter().all(|c| *c != StageClass::Live);
    let any_pure = classes.iter().any(|c| *c != StageClass::Live);
    let no_timeline = instruments.as_ref().is_none_or(|i| i.timeline.is_none());
    let batchable = config.batch && all_pure && !faults.thrash_emem_cache && no_timeline;
    // Partial-run batching: Live stages no longer poison the whole run.
    // Pure stages are costed once per (unit-group, payload-length) class
    // and the genuinely history-coupled stages are replayed per packet in
    // an exact sequential merge — so the partial kernel, unlike the full
    // one, tolerates cache-thrash faults and never needs a fallback.
    let partially_batchable = config.batch && any_pure && !all_pure && no_timeline;
    enum Source<'r, I> {
        Live(I),
        Rows(std::slice::Iter<'r, TracePacket>),
    }
    impl<I: Iterator<Item = TracePacket>> Iterator for Source<'_, I> {
        type Item = TracePacket;
        fn next(&mut self) -> Option<TracePacket> {
            match self {
                Source::Live(i) => i.next(),
                Source::Rows(r) => r.next().cloned(),
            }
        }
    }
    let source;
    if batchable || partially_batchable {
        if partially_batchable {
            // The partial kernel replays per-packet state, so it wants
            // the rows materialized up front. The full kernel ingests
            // inside its own fused column pass instead.
            rows.clear();
            for (idx, tp) in packets.by_ref().enumerate() {
                // Same supervision cadence the scalar loop polls at.
                if idx % DEADLINE_STRIDE == 0 && watchdog.expired() {
                    return Err(SimError::TimedOut);
                }
                rows.push(tp);
            }
        }
        let run = crate::batch::BatchRun {
            nic,
            prog,
            faults,
            watchdog,
            rows: &mut *rows,
            emem,
            fc_engine_cycles,
            offline_required,
            ingress_lat: ingress.map(|h| h.latency).unwrap_or(0),
            egress_lat: egress.map(|h| h.latency).unwrap_or(0),
            ingress_capacity,
            stage_stalls: &stage_stalls,
            freq,
            pkt_limit,
            total_limit,
            use_islands: config.islands,
            classes: &classes[..],
            shared: shared_view.as_deref(),
            memo_hits: &mut memo_hits,
            memo_misses: &mut memo_misses,
            mem: &mut mem,
            tables: &mut tables,
            accels: &mut accels,
            threads: &mut threads[..],
            pending: &mut *pending,
            latencies: &mut *latencies,
            completions: &mut *completions,
            stage_totals: &mut stage_totals[..],
            fc_hits: &mut fc_hits,
            fc_misses: &mut fc_misses,
            scratch: &mut *batch_scratch,
            thread_island: &thread_island,
            island_busy: &mut island_busy,
            instrumented: instruments.is_some(),
            probes: probes.as_mut(),
        };
        let outcome = if batchable {
            crate::batch::run_batched(run, packets)?
        } else {
            // The partial kernel replays per-packet state exactly, so it
            // never refuses a run the way the full kernel can.
            Some(crate::batch::run_partial(run)?)
        };
        match outcome {
            Some(tally) => {
                offered = tally.offered;
                dropped = tally.overflow_drops;
                accel_drops = tally.accel_drops;
                corrupt_drops = tally.corrupt_drops;
                truncated = tally.truncated;
                busy_cycles = tally.busy_cycles;
                batch_packets = tally.batch_packets;
                island_packets = tally.island_packets;
                partial_packets = tally.partial_packets;
                // Outputs are already in the arenas; the scalar loop
                // below sees an empty source and falls through.
                source = Source::Rows(std::slice::Iter::default());
            }
            None => {
                // Fallback: the kernel refused the run (ingress-queue
                // overflow, cycle counts near saturation). Reset every
                // piece of state the attempt touched and replay the
                // exact scalar loop over the ingested rows. Rare by
                // construction; fidelity beats speed here.
                mem = MemorySim::new(nic);
                if faults.disable_emem_cache {
                    if let Some(e) = emem {
                        mem.disable_cache(e);
                    }
                }
                for (t, cfg) in tables.iter_mut().zip(&prog.tables) {
                    t.base = mem.alloc(t.mem, cfg.size_bytes() as u64);
                }
                for t in threads.iter_mut() {
                    t.free_at = 0;
                }
                for b in island_busy.iter_mut() {
                    *b = 0;
                }
                latencies.clear();
                completions.clear();
                for s in stage_totals.iter_mut() {
                    *s = 0;
                }
                pending.clear();
                fc_hits = 0;
                fc_misses = 0;
                // Shared-layer tallies restart with the replay; values the
                // refused attempt already published stay valid (pure costs
                // are fingerprint-determined) and will be re-resolved.
                memo_hits = 0;
                memo_misses = 0;
                source = Source::Rows(rows.iter());
            }
        }
    } else {
        source = Source::Live(packets);
    }

    for (pkt_idx, tp) in source.enumerate() {
        offered += 1;
        // Wall-clock supervision is polled on a stride: cheap enough to
        // leave on for every run, fine-grained enough that a cancelled
        // simulation stops within ~a thousand packets.
        if pkt_idx % DEADLINE_STRIDE == 0 && watchdog.expired() {
            return Err(SimError::TimedOut);
        }
        // Arrivals from a Trace or TraceStream are already monotone; the
        // clamp is a no-op there and makes raw iterators behave as if
        // they had been materialized through Trace::push first.
        let arrival = to_cycles(tp.ts_ns).max(last_arrival);
        last_arrival = arrival;

        // Fault injection: corrupt frames fail the ingress CRC check and
        // are discarded before queueing.
        if faults.corrupt_every > 0 && (pkt_idx as u64 + 1).is_multiple_of(faults.corrupt_every) {
            corrupt_drops += 1;
            continue;
        }
        // Fault injection: a packet that needs an offline engine cannot
        // be serviced — discard it instead of wedging a thread.
        if offline_required {
            accel_drops += 1;
            continue;
        }

        // Ingress queue: packets that arrived earlier but have not started.
        while pending.peek().is_some_and(|&Reverse(s)| s <= arrival) {
            pending.pop();
        }
        if pending.len() >= ingress_capacity {
            dropped += 1;
            continue;
        }

        // RSS-style dispatch: a flow is pinned to a thread by its hash
        // (packets of one flow must not be reordered). Skewed flows
        // therefore concentrate on hot threads, as on real hardware.
        let flow_hash = tp.spec.flow.hash64();
        let tid = (mix(flow_hash ^ 0x5a5a) % threads.len() as u64) as usize;
        let start = arrival.max(threads[tid].free_at);
        // Only future starts can ever occupy the queue: arrivals are
        // monotone, so an entry with `start <= arrival` would be drained
        // by the pop loop above before any later capacity check could see
        // it. Skipping the push is therefore exact, and in the unloaded
        // case the heap stays empty entirely.
        if start > arrival {
            pending.push(Reverse(start));
        }
        let unit = threads[tid].unit;
        let ctm = threads[tid].ctm;

        let mut payload_len = tp.spec.payload_len as u64;
        let mut wire_len = tp.spec.wire_len() as u64;
        // Fault injection: truncated frames keep only a runt payload; the
        // program still runs, over the bytes that actually arrived.
        if faults.truncate_every > 0 && (pkt_idx as u64 + 1).is_multiple_of(faults.truncate_every) {
            truncated += 1;
            let headers = wire_len.saturating_sub(payload_len);
            payload_len = payload_len.min(TRUNCATED_PAYLOAD_BYTES);
            wire_len = headers + payload_len;
        }
        let payload_seed = tp.spec.payload_seed;

        // Fault injection: a co-tenant wipes the EMEM cache between
        // packets, so no working set survives.
        if faults.thrash_emem_cache {
            if let Some(e) = emem {
                mem.flush_cache(e);
            }
        }

        let mut cur = start + ingress.map(|h| h.latency).unwrap_or(0);
        let mut pkt_cycles = 0u64;
        for (si, stage) in prog.stages.iter().enumerate() {
            // Signature memoization: a pure stage's cost is computed once
            // per (stage, unit[, payload]) signature by the exact code
            // path below, then replayed — bit-identical by construction.
            let memo_hit = match classes[si] {
                StageClass::Fixed => fixed_memo.get(&(si as u32, unit.0 as u32)).copied(),
                StageClass::PayloadPure => {
                    payload_memo.get(&(si as u32, unit.0 as u32, payload_len)).copied()
                }
                StageClass::Live => None,
            };
            let cost = match memo_hit {
                Some(c) => c,
                None => {
                    // Run-local miss: resolve against the shared cache
                    // (when attached) before computing. Shared values were
                    // produced by this exact path under an equal
                    // fingerprint, so replaying them is bit-identical.
                    let pure = classes[si] != StageClass::Live;
                    let shared_hit = if pure {
                        shared_view.as_deref().and_then(|v| match classes[si] {
                            StageClass::Fixed => v.get_fixed(si as u32, unit.0 as u32),
                            StageClass::PayloadPure => {
                                v.get_payload(si as u32, unit.0 as u32, payload_len)
                            }
                            StageClass::Live => None,
                        })
                    } else {
                        None
                    };
                    let c = match shared_hit {
                        Some(c) => {
                            memo_hits += 1;
                            c
                        }
                        None => {
                            let c = stage_cost(
                                nic,
                                &mut mem,
                                &mut tables,
                                &mut accels,
                                stage,
                                unit,
                                ctm,
                                cur,
                                payload_len,
                                wire_len,
                                flow_hash,
                                payload_seed,
                                emem,
                                &mut fc_hits,
                                &mut fc_misses,
                                fc_engine_cycles,
                                stage_stalls[si],
                                probes.as_mut(),
                            )?;
                            if pure {
                                memo_misses += 1;
                                if let Some(v) = shared_view.as_deref() {
                                    match classes[si] {
                                        StageClass::Fixed => {
                                            v.put_fixed(si as u32, unit.0 as u32, c)
                                        }
                                        StageClass::PayloadPure => {
                                            v.put_payload(si as u32, unit.0 as u32, payload_len, c)
                                        }
                                        StageClass::Live => {}
                                    }
                                }
                            }
                            c
                        }
                    };
                    match classes[si] {
                        StageClass::Fixed => {
                            fixed_memo.insert((si as u32, unit.0 as u32), c);
                        }
                        StageClass::PayloadPure => {
                            payload_memo.insert((si as u32, unit.0 as u32, payload_len), c);
                        }
                        StageClass::Live => {}
                    }
                    c
                }
            };
            // Saturating accumulation: an adversarial stage can produce
            // costs near u64::MAX; the watchdog must see "huge", not a
            // wrapped-around small number.
            pkt_cycles = pkt_cycles.saturating_add(cost);
            if pkt_cycles > pkt_limit {
                return Err(SimError::Watchdog {
                    packet: pkt_idx,
                    stage: stage.name.clone(),
                    cycles: pkt_cycles,
                    limit: pkt_limit,
                });
            }
            stage_totals[si] = stage_totals[si].saturating_add(cost);
            // Timeline: `cur` is the stage's start on the packet's
            // critical path, `cost` its duration — valid for memoized
            // stages too, whose replayed cost is bit-identical.
            if let Some(i) = instruments.as_deref_mut() {
                if let Some(tl) = i.timeline.as_mut() {
                    if tl.wants(pkt_idx as u64) {
                        tl.record(
                            pkt_idx as u64,
                            &stage.name,
                            &stage_unit_labels[si],
                            tid as u32,
                            cur,
                            cost,
                        );
                    }
                }
            }
            cur = cur.saturating_add(cost);
        }
        cur += egress.map(|h| h.latency).unwrap_or(0);

        threads[tid].free_at = cur;
        if instruments.is_some() {
            island_busy[thread_island[tid]] += cur - start;
        }
        busy_cycles = busy_cycles.saturating_add(cur - start);
        if busy_cycles > total_limit {
            return Err(SimError::Watchdog {
                packet: pkt_idx,
                stage: "<run total>".into(),
                cycles: busy_cycles,
                limit: total_limit,
            });
        }
        completions.push(cur);
        latencies.push(cur - arrival);
    }

    // Fold this run's shared-layer tallies into the cache-wide atomics
    // (once per run, not per lookup — the hot loop stays atomics-free).
    if let Some(cache) = shared_costs.as_ref() {
        cache.record(memo_hits, memo_misses);
    }

    // Order statistics via selection instead of a full sort: `latencies`
    // stays in arrival order, so the borrowed `select` scratch is
    // partitioned for p50/p99 and then reused for the completion
    // quartiles — the seed cloned and fully sorted both vectors, an
    // O(packets) allocation per run even outside sweeps.
    let completed = latencies.len();
    select.clear();
    select.extend_from_slice(latencies);
    let (avg, p50, p99, max_lat) = if completed == 0 {
        (0.0, 0.0, 0.0, 0.0)
    } else {
        let avg = latencies.iter().sum::<u64>() as f64 / completed as f64;
        let idx = |p: f64| ((completed - 1) as f64 * p) as usize;
        let (i50, i99) = (idx(0.5), idx(0.99));
        let (below, v99, _) = select.select_nth_unstable(i99);
        let p99 = *v99;
        let p50 = if i50 == i99 { p99 } else { *below.select_nth_unstable(i50).1 };
        let max = *latencies.iter().max().unwrap();
        (avg, p50 as f64, p99 as f64, max as f64)
    };
    // Output rate over the interquartile completion window: unbiased by
    // the initial pipeline fill, the final drain, and single-packet tails.
    let (lo, hi) = (completions.len() / 4, completions.len() * 3 / 4);
    let (span_cycles, span_count) = if completions.is_empty() {
        (0, 0.0)
    } else {
        select.clear();
        select.extend_from_slice(completions);
        let (below, hi_v, _) = select.select_nth_unstable(hi);
        let hi_v = *hi_v;
        let lo_v = if lo == hi { hi_v } else { *below.select_nth_unstable(lo).1 };
        if hi > lo && hi_v > lo_v {
            (hi_v - lo_v, (hi - lo) as f64)
        } else {
            let min = *completions.iter().min().unwrap();
            let max = *completions.iter().max().unwrap();
            (max - min, completions.len().saturating_sub(1) as f64)
        }
    };
    let span_secs = nic.cycles_to_ns(span_cycles as f64) * 1e-9;

    // Assemble telemetry. Every counter mirrors a local the result is
    // built from (or a read-only probe of run state), so conservation —
    // injected == completed + drops by cause — is structural.
    if let Some(instr) = instruments {
        let trips = instr.stats.watchdog_trips;
        let accel_stats: Vec<AccelStats> = probes
            .take()
            .map(|probes| {
                ACCEL_KINDS
                    .iter()
                    .zip(probes.iter())
                    .filter(|(_, p)| p.calls > 0)
                    .map(|(kind, p)| AccelStats {
                        name: kind.to_string(),
                        calls: p.calls,
                        busy_cycles: p.busy_cycles,
                        hol_stall_cycles: p.hol_stall_cycles,
                        queue_highwater: p.queue_highwater,
                    })
                    .collect()
            })
            .unwrap_or_default();
        let accel_calls: u64 = accel_stats.iter().map(|a| a.calls).sum();
        // Fabric traffic: accesses to shared (non-island) memory levels
        // plus accelerator invocations. Cross-island CTM reads ride the
        // same fabric but are not separable from local ones here.
        let shared_accesses: u64 = nic
            .memories()
            .iter()
            .enumerate()
            .filter(|(_, m)| {
                matches!(m.kind, MemKind::Internal | MemKind::External | MemKind::HostDram)
            })
            .map(|(i, _)| mem.access_count(MemId(i)))
            .sum();
        let (emem_hits, emem_misses) = emem.and_then(|e| mem.cache_stats(e)).unwrap_or((0, 0));
        instr.stats = SimStats {
            injected: offered as u64,
            completed: completed as u64,
            truncated: truncated as u64,
            overflow_drops: dropped as u64,
            fault_corrupt_drops: corrupt_drops as u64,
            fault_accel_drops: accel_drops as u64,
            watchdog_trips: trips,
            batch_packets,
            island_packets,
            batch_partial_packets: partial_packets,
            memo_hits,
            memo_misses,
            islands: island_busy
                .iter()
                .zip(island_threads.iter())
                .enumerate()
                .map(|(i, (&busy, &thr))| IslandStats {
                    island: i,
                    threads: thr,
                    busy_cycles: busy,
                })
                .collect(),
            mem_levels: nic
                .memories()
                .iter()
                .enumerate()
                .map(|(i, m)| MemLevelStats {
                    name: m.name.clone(),
                    accesses: mem.access_count(MemId(i)),
                })
                .collect(),
            emem_cache_hits: emem_hits,
            emem_cache_misses: emem_misses,
            accels: accel_stats,
            switch_transfers: shared_accesses + accel_calls,
            span_cycles: completions.iter().copied().max().unwrap_or(0),
        };
    }

    Ok(SimResult {
        packets: offered,
        completed,
        dropped,
        accel_drops,
        corrupt_drops,
        truncated,
        avg_latency_cycles: avg,
        p50_latency_cycles: p50,
        p99_latency_cycles: p99,
        max_latency_cycles: max_lat,
        avg_latency_ns: nic.cycles_to_ns(avg),
        achieved_pps: if span_secs > 0.0 { span_count / span_secs } else { 0.0 },
        per_stage_cycles: prog
            .stages
            .iter()
            .zip(stage_totals.iter())
            .map(|(s, &t)| {
                (s.name.clone(), if completed == 0 { 0.0 } else { t as f64 / completed as f64 })
            })
            .collect(),
        flow_cache: (fc_hits, fc_misses),
        emem_cache: emem.and_then(|e| mem.cache_stats(e)),
        energy_mj: busy_cycles as f64 * nic.nj_per_cycle * 1e-6,
        // The streamed path leaves per-packet latencies in the scratch
        // (`SimScratch::latencies`); `simulate_configured` moves them in.
        latencies: Vec::new(),
    })
}

/// splitmix64 — deterministic address scrambling.
pub(crate) fn mix(z: u64) -> u64 {
    let mut z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn stage_cost(
    nic: &Lnic,
    mem: &mut MemorySim,
    tables: &mut [TableRt],
    accels: &mut [Option<AccelRt>; 4],
    stage: &Stage,
    unit: UnitId,
    ctm: Option<MemId>,
    stage_start: u64,
    payload_len: u64,
    wire_len: u64,
    flow_hash: u64,
    payload_seed: u8,
    emem: Option<MemId>,
    fc_hits: &mut u64,
    fc_misses: &mut u64,
    fc_engine_cycles: u64,
    accel_stall: u64,
    probes: Option<&mut [AccelProbe; 4]>,
) -> Result<u64, SimError> {
    match stage.unit {
        StageUnit::Accel(kind) => {
            let accel = accels[kind as usize]
                .as_mut()
                .ok_or_else(|| SimError::MissingAccelerator(kind.to_string()))?;
            let curve = accel.curve.unwrap_or(AccelCost {
                base: 100,
                per_byte: 0.5,
                queue_capacity: 32,
            });
            let mut probe = probes.map(|p| &mut p[kind as usize]);
            let mut total = 0u64;
            let mut server_free = accel.free_at;
            for op in &stage.ops {
                let MicroOp::AccelCall { bytes } = op else { continue };
                let n = bytes.resolve(payload_len, wire_len);
                // A wedged engine stalls for extra cycles on every call.
                let service = curve.service_cycles(n as usize) + accel_stall;
                let submit = stage_start + total;
                let begin = submit.max(server_free);
                let wait = begin - submit;
                server_free = begin + service;
                if let Some(p) = probe.as_deref_mut() {
                    p.calls += 1;
                    p.busy_cycles += service;
                    p.hol_stall_cycles += wait;
                    // Queue depth at submission: earlier calls not yet
                    // drained, plus this one (the entry in service
                    // counts).
                    while p.inflight.front().is_some_and(|&t| t <= submit) {
                        p.inflight.pop_front();
                    }
                    p.inflight.push_back(begin + service);
                    p.queue_highwater = p.queue_highwater.max(p.inflight.len() as u64);
                }
                total += wait + service;
            }
            accel.free_at = server_free;
            Ok(total)
        }
        StageUnit::Npu => {
            let mut total = 0u64;
            for op in &stage.ops {
                total = total.saturating_add(npu_op_cost(
                    nic,
                    mem,
                    tables,
                    op,
                    unit,
                    ctm,
                    payload_len,
                    flow_hash,
                    payload_seed,
                    emem,
                    fc_hits,
                    fc_misses,
                    fc_engine_cycles,
                ));
            }
            Ok(total)
        }
    }
}

/// Cost of a single NPU micro-op — the body of [`stage_cost`]'s NPU
/// arm, split out so the partial batch kernel can cost a Live stage's
/// pure ops once per class while replaying only its flow-cache ops per
/// packet. A saturating sum of these per-op costs in any association
/// equals `min(true_sum, u64::MAX)`, i.e. exactly the scalar in-order
/// chain.
#[allow(clippy::too_many_arguments)]
pub(crate) fn npu_op_cost(
    nic: &Lnic,
    mem: &mut MemorySim,
    tables: &mut [TableRt],
    op: &MicroOp,
    unit: UnitId,
    ctm: Option<MemId>,
    payload_len: u64,
    flow_hash: u64,
    payload_seed: u8,
    emem: Option<MemId>,
    fc_hits: &mut u64,
    fc_misses: &mut u64,
    fc_engine_cycles: u64,
) -> u64 {
    let u = nic.unit(unit);
    let cost = &u.cost;
    let has_fpu = u.has_fpu;
    match op {
        MicroOp::Compute { cycles } => *cycles,
        MicroOp::ParseHeader => cost.parse_header,
        MicroOp::MetadataMod { count } => count * cost.metadata_mod,
        MicroOp::Hash { count } => count * cost.hash,
        MicroOp::TableLookup { table } => {
            table_access(mem, &mut tables[*table], unit, flow_hash, false, fc_hits, fc_misses, fc_engine_cycles)
        }
        MicroOp::TableWrite { table } => {
            table_access(mem, &mut tables[*table], unit, flow_hash, true, fc_hits, fc_misses, fc_engine_cycles)
        }
        MicroOp::CounterUpdate { table } => {
            let t = &mut tables[*table];
            let bucket = mix(flow_hash) % t.entries;
            let addr = t.base + bucket * t.entry_bytes;
            let read = mem.access(unit, t.mem, addr, 8);
            let write = mem.access(unit, t.mem, addr, 8);
            read + write + 2 * cost.alu
        }
        MicroOp::LinearScan { table } => {
            let t = &tables[*table];
            let size = t.entries * t.entry_bytes;
            let walk = mem.access(unit, t.mem, t.base, size);
            walk + t.entries * 2 * cost.alu
        }
        MicroOp::StreamPayload { table, loop_overhead } => {
            // Saturating: `loop_overhead × payload_len` is the
            // program's knob, and a hostile program can push the
            // product past u64. Saturation keeps the cost "huge"
            // so the watchdog trips, instead of wrapping to a
            // small number (or panicking in debug builds).
            let mut cycles = cost
                .stream_cycles(payload_len as usize)
                .saturating_add(loop_overhead.saturating_mul(payload_len));
            cycles = cycles.saturating_add(residence_cost(mem, unit, ctm, emem, payload_len));
            if let Some(ti) = table {
                // Per-byte automaton transition: a dependent
                // random access into the transition table.
                let t = &tables[*ti];
                let mut state = flow_hash;
                for i in 0..payload_len {
                    let byte = payload_seed.wrapping_add(i as u8) as u64;
                    // Full-avalanche state evolution: a DFA
                    // over a large automaton visits distinct
                    // transitions, not a short cycle.
                    state = mix(state ^ byte ^ (i << 32));
                    let idx = state % t.entries;
                    let addr = t.base + idx * t.entry_bytes;
                    cycles =
                        cycles.saturating_add(mem.access(unit, t.mem, addr, t.entry_bytes.min(8)));
                }
            }
            cycles
        }
        MicroOp::ChecksumSw => {
            let bytes = payload_len + 40;
            cost.stream_cycles(bytes as usize) + residence_cost(mem, unit, ctm, emem, bytes)
        }
        MicroOp::AccelCall { .. } => unreachable!("validated"),
        MicroOp::FloatOps { count } => {
            count * if has_fpu { cost.float_native } else { cost.float_emulation }
        }
    }
}

/// Bulk cost of streaming `bytes` of packet data from its residence
/// (CTM, spilling to EMEM past the residency threshold).
fn residence_cost(
    mem: &MemorySim,
    unit: UnitId,
    ctm: Option<MemId>,
    emem: Option<MemId>,
    bytes: u64,
) -> u64 {
    let head = bytes.min(CTM_RESIDENCY_BYTES);
    let tail = bytes.saturating_sub(CTM_RESIDENCY_BYTES);
    let mut total = 0u64;
    if let Some(c) = ctm {
        total += mem.raw_latency(unit, c) + (mem.bulk_per_byte(c) * head as f64).round() as u64;
    }
    if tail > 0 {
        if let Some(e) = emem {
            total +=
                mem.raw_latency(unit, e) + (mem.bulk_per_byte(e) * tail as f64).round() as u64;
        }
    }
    total
}

#[allow(clippy::too_many_arguments)]
fn table_access(
    mem: &mut MemorySim,
    t: &mut TableRt,
    unit: UnitId,
    flow_hash: u64,
    is_write: bool,
    fc_hits: &mut u64,
    fc_misses: &mut u64,
    fc_engine_cycles: u64,
) -> u64 {
    let overhead = 4; // hash/index arithmetic on the core
    if let Some(fc) = &mut t.fc {
        let hit = fc.access(mix(flow_hash));
        if hit && !is_write {
            *fc_hits += 1;
            return fc_engine_cycles + overhead;
        }
        if hit {
            *fc_hits += 1;
        } else {
            *fc_misses += 1;
        }
        // Miss (or write-through): engine probe + backing access.
        let bucket = mix(flow_hash) % t.entries;
        let addr = t.base + bucket * t.entry_bytes;
        return fc_engine_cycles + mem.access(unit, t.mem, addr, t.entry_bytes) + overhead;
    }
    let bucket = mix(flow_hash) % t.entries;
    let addr = t.base + bucket * t.entry_bytes;
    mem.access(unit, t.mem, addr, t.entry_bytes) + overhead
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{BytesSpec, TableCfg};
    use clara_lnic::profiles;
    use clara_workload::{SizeDist, TraceGenerator};

    fn nic() -> Lnic {
        profiles::netronome_agilio_cx40()
    }

    fn trace(packets: usize) -> Trace {
        TraceGenerator::new(7)
            .packets(packets)
            .flows(100)
            .sizes(SizeDist::Fixed(300))
            .syn_on_first(false)
            .generate()
    }

    fn npu_stage(ops: Vec<MicroOp>) -> NicProgram {
        NicProgram {
            name: "test".into(),
            tables: vec![],
            stages: vec![Stage { name: "s".into(), unit: StageUnit::Npu, ops }],
        }
    }

    #[test]
    fn echo_latency_is_parse_plus_hubs() {
        let prog = npu_stage(vec![MicroOp::ParseHeader]);
        let r = simulate(&nic(), &prog, &trace(100)).unwrap();
        assert_eq!(r.completed, 100);
        // 150 parse + 50 ingress + 50 egress = 250, no queueing at 60kpps.
        assert!((r.avg_latency_cycles - 250.0).abs() < 1.0, "{}", r.avg_latency_cycles);
    }

    #[test]
    fn checksum_accelerator_beats_software() {
        let nic = nic();
        let sw = npu_stage(vec![MicroOp::ChecksumSw]);
        let hw = NicProgram {
            name: "hw".into(),
            tables: vec![],
            stages: vec![Stage {
                name: "ck".into(),
                unit: StageUnit::Accel(AccelKind::Checksum),
                ops: vec![MicroOp::AccelCall { bytes: BytesSpec::Frame }],
            }],
        };
        let t = TraceGenerator::new(1)
            .packets(200)
            .sizes(SizeDist::Fixed(960))
            .syn_on_first(false)
            .generate();
        let r_sw = simulate(&nic, &sw, &t).unwrap();
        let r_hw = simulate(&nic, &hw, &t).unwrap();
        // §2.1: software pays ~1700 extra cycles per 1000 B for memory.
        assert!(
            r_sw.avg_latency_cycles > r_hw.avg_latency_cycles + 1200.0,
            "sw {} vs hw {}",
            r_sw.avg_latency_cycles,
            r_hw.avg_latency_cycles
        );
    }

    #[test]
    fn memory_placement_matters() {
        let mk = |region: &str| NicProgram {
            name: "fw".into(),
            tables: vec![TableCfg {
                name: "t".into(),
                mem: region.into(),
                entry_bytes: 16,
                entries: 4096,
                use_flow_cache: false,
            }],
            stages: vec![Stage {
                name: "lookup".into(),
                unit: StageUnit::Npu,
                ops: vec![MicroOp::TableLookup { table: 0 }],
            }],
        };
        let nic = nic();
        let t = trace(500);
        let ctm = simulate(&nic, &mk("ctm0"), &t).unwrap().avg_latency_cycles;
        let imem = simulate(&nic, &mk("imem"), &t).unwrap().avg_latency_cycles;
        let emem = simulate(&nic, &mk("emem"), &t).unwrap().avg_latency_cycles;
        // A small hot table: CTM is cheapest. The EMEM *cache* (150 cyc)
        // legitimately beats flat IMEM (250 cyc) once the working set is
        // resident — the kind of non-obvious effect §2.1 describes.
        assert!(ctm < imem && ctm < emem, "ctm {ctm} imem {imem} emem {emem}");

        // A large cold working set (64 MB, 20k flows): the EMEM cache
        // stops helping and IMEM would have won if it were big enough.
        let big = NicProgram {
            name: "fw".into(),
            tables: vec![TableCfg {
                name: "t".into(),
                mem: "emem".into(),
                entry_bytes: 64,
                entries: 1 << 20,
                use_flow_cache: false,
            }],
            stages: vec![Stage {
                name: "lookup".into(),
                unit: StageUnit::Npu,
                ops: vec![MicroOp::TableLookup { table: 0 }],
            }],
        };
        let many_flows = TraceGenerator::new(9)
            .packets(2000)
            .flows(20_000)
            .syn_on_first(false)
            .generate();
        let emem_cold = simulate(&nic, &big, &many_flows).unwrap().avg_latency_cycles;
        assert!(emem_cold > imem, "cold emem {emem_cold} vs imem {imem}");
    }

    #[test]
    fn flow_cache_hits_on_skewed_traffic() {
        let mk = |fc: bool| NicProgram {
            name: "lpm".into(),
            tables: vec![TableCfg {
                name: "rules".into(),
                mem: "emem".into(),
                entry_bytes: 16,
                entries: 10_000,
                use_flow_cache: fc,
            }],
            stages: vec![Stage {
                name: "match".into(),
                unit: StageUnit::Npu,
                ops: vec![MicroOp::LinearScan { table: 0 }],
            }],
        };
        // With the flow cache the lookup is a TableLookup-style hit path;
        // model that variant with TableLookup + fc.
        let cached = NicProgram {
            stages: vec![Stage {
                name: "match".into(),
                unit: StageUnit::Npu,
                ops: vec![MicroOp::TableLookup { table: 0 }],
            }],
            ..mk(true)
        };
        let nic = nic();
        let t = TraceGenerator::new(3)
            .packets(2000)
            .flows(50)
            .syn_on_first(false)
            .generate();
        let scan = simulate(&nic, &mk(false), &t).unwrap();
        let fc = simulate(&nic, &cached, &t).unwrap();
        assert!(
            fc.avg_latency_cycles * 10.0 < scan.avg_latency_cycles,
            "orders of magnitude apart: fc {} vs scan {}",
            fc.avg_latency_cycles,
            scan.avg_latency_cycles
        );
        let (hits, misses) = fc.flow_cache;
        assert!(hits > misses, "hits {hits} misses {misses}");
    }

    #[test]
    fn linear_scan_scales_with_entries() {
        let mk = |entries: u64| NicProgram {
            name: "lpm".into(),
            tables: vec![TableCfg {
                name: "rules".into(),
                mem: "emem".into(),
                entry_bytes: 16,
                entries,
                use_flow_cache: false,
            }],
            stages: vec![Stage {
                name: "scan".into(),
                unit: StageUnit::Npu,
                ops: vec![MicroOp::LinearScan { table: 0 }],
            }],
        };
        let nic = nic();
        // Enough flows that RSS spreads load over all threads and the
        // measurement stays queueing-free.
        let t = TraceGenerator::new(7)
            .packets(300)
            .flows(5_000)
            .rate_pps(10_000.0)
            .sizes(SizeDist::Fixed(300))
            .syn_on_first(false)
            .generate();
        let small = simulate(&nic, &mk(5_000), &t).unwrap().avg_latency_cycles;
        let large = simulate(&nic, &mk(30_000), &t).unwrap().avg_latency_cycles;
        let ratio = large / small;
        assert!((4.0..8.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn payload_spill_to_emem_costs_more() {
        let prog = npu_stage(vec![MicroOp::StreamPayload { table: None, loop_overhead: 0 }]);
        let nic = nic();
        let small = TraceGenerator::new(2)
            .packets(100)
            .sizes(SizeDist::Fixed(1000))
            .syn_on_first(false)
            .generate();
        let big = TraceGenerator::new(2)
            .packets(100)
            .sizes(SizeDist::Fixed(1400))
            .syn_on_first(false)
            .generate();
        let r_small = simulate(&nic, &prog, &small).unwrap().avg_latency_cycles;
        let r_big = simulate(&nic, &prog, &big).unwrap().avg_latency_cycles;
        // 400 extra bytes at EMEM bulk (4.0/B) + EMEM base ≈ 2100 extra,
        // vs only ~780 if the tail stayed in CTM.
        assert!(r_big - r_small > 1500.0, "small {r_small} big {r_big}");
    }

    #[test]
    fn saturation_grows_latency() {
        // One heavy compute stage; drive arrival rate past capacity.
        // Capacity: 3072 threads x 0.8 GHz ≈ 2.5e12 cycle/s; at 1M cycles
        // per packet that saturates near 2.5 Mpps — offer 10 Mpps.
        let prog = npu_stage(vec![MicroOp::Compute { cycles: 1_000_000 }]);
        let nic = nic();
        let slow = TraceGenerator::new(4)
            .packets(20_000)
            .flows(20_000)
            .rate_pps(50_000.0)
            .generate();
        let fast = TraceGenerator::new(4)
            .packets(20_000)
            .flows(20_000)
            .rate_pps(10_000_000.0)
            .generate();
        let r_slow = simulate(&nic, &prog, &slow).unwrap();
        let r_fast = simulate(&nic, &prog, &fast).unwrap();
        // Overload shows up as queueing delay AND ingress-queue drops.
        assert!(
            r_fast.avg_latency_cycles > 1.5 * r_slow.avg_latency_cycles,
            "slow {} fast {}",
            r_slow.avg_latency_cycles,
            r_fast.avg_latency_cycles
        );
        assert_eq!(r_slow.dropped, 0);
        assert!(r_fast.dropped > 0, "expected ingress drops under overload");
        assert!(r_fast.achieved_pps < 9_000_000.0);
    }

    #[test]
    fn accelerator_head_of_line_blocking() {
        let prog = NicProgram {
            name: "crypto".into(),
            tables: vec![],
            stages: vec![Stage {
                name: "aes".into(),
                unit: StageUnit::Accel(AccelKind::Crypto),
                ops: vec![MicroOp::AccelCall { bytes: BytesSpec::Payload }],
            }],
        };
        let nic = nic();
        // 1400-byte payloads: service ~1600 cycles = 2 µs at 0.8 GHz.
        // 600 kpps offered = 1.67 µs spacing -> the single crypto engine
        // saturates and queueing delay accumulates.
        let light = TraceGenerator::new(5)
            .packets(1000)
            .rate_pps(100_000.0)
            .sizes(SizeDist::Fixed(1400))
            .syn_on_first(false)
            .generate();
        let heavy = TraceGenerator::new(5)
            .packets(1000)
            .rate_pps(600_000.0)
            .sizes(SizeDist::Fixed(1400))
            .syn_on_first(false)
            .generate();
        let r_light = simulate(&nic, &prog, &light).unwrap();
        let r_heavy = simulate(&nic, &prog, &heavy).unwrap();
        assert!(
            r_heavy.p99_latency_cycles > 3.0 * r_light.p99_latency_cycles,
            "light p99 {} heavy p99 {}",
            r_light.p99_latency_cycles,
            r_heavy.p99_latency_cycles
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let prog = npu_stage(vec![MicroOp::ParseHeader, MicroOp::Hash { count: 2 }]);
        let nic = nic();
        let t = trace(500);
        let a = simulate(&nic, &prog, &t).unwrap();
        let b = simulate(&nic, &prog, &t).unwrap();
        assert_eq!(a.latencies, b.latencies);
        assert_eq!(a.energy_mj, b.energy_mj);
    }

    #[test]
    fn instrumented_run_is_bit_identical_and_conserved() {
        let nic = nic();
        // A cached EMEM table and an accelerator stage so every counter
        // family has traffic; a fault plan so drops have causes.
        let prog = NicProgram {
            name: "dpi".into(),
            tables: vec![TableCfg {
                name: "t".into(),
                mem: "emem".into(),
                entry_bytes: 16,
                entries: 4096,
                use_flow_cache: false,
            }],
            stages: vec![
                Stage {
                    name: "lookup".into(),
                    unit: StageUnit::Npu,
                    ops: vec![MicroOp::ParseHeader, MicroOp::TableLookup { table: 0 }],
                },
                Stage {
                    name: "ck".into(),
                    unit: StageUnit::Accel(AccelKind::Checksum),
                    ops: vec![MicroOp::AccelCall { bytes: BytesSpec::Frame }],
                },
            ],
        };
        let t = trace(800);
        let faults = FaultPlan { corrupt_every: 7, ..FaultPlan::none() };
        let wd = Watchdog::default();
        let cfg = SimConfig::default();
        let plain = simulate_configured(&nic, &prog, &t, &faults, &wd, &cfg).unwrap();
        let mut instr = SimInstruments::with_timeline(5);
        let seen = simulate_instrumented(&nic, &prog, &t, &faults, &wd, &cfg, &mut instr).unwrap();

        // Telemetry never perturbs results.
        assert_eq!(plain.latencies, seen.latencies);
        assert_eq!(plain.energy_mj.to_bits(), seen.energy_mj.to_bits());
        assert_eq!(plain.emem_cache, seen.emem_cache);

        // Counters mirror the result and conserve packets by cause.
        let s = &instr.stats;
        assert!(s.conserved(), "{s:?}");
        assert_eq!(s.injected, seen.packets as u64);
        assert_eq!(s.completed, seen.completed as u64);
        assert_eq!(s.fault_corrupt_drops, seen.corrupt_drops as u64);
        assert_eq!(
            (s.emem_cache_hits, s.emem_cache_misses),
            seen.emem_cache.unwrap_or((0, 0))
        );
        assert!(s.emem_hit_rate().is_some());
        assert!(s.islands.iter().any(|i| i.busy_cycles > 0));
        assert!(s.mem_levels.iter().any(|m| m.name == "emem" && m.accesses > 0));
        assert_eq!(s.accels.len(), 1);
        assert!(s.accels[0].calls > 0 && s.accels[0].queue_highwater >= 1);
        assert!(s.switch_transfers > 0);

        // The timeline covers exactly the first 5 packets, both stages.
        let tl = instr.timeline.unwrap();
        assert!(tl.spans.iter().all(|sp| sp.packet < 5));
        assert_eq!(tl.spans.len(), 10, "2 stages x 5 recorded packets");
        assert!(tl.spans.iter().any(|sp| sp.unit == "checksum"));
    }

    #[test]
    fn instrumented_streamed_matches_instrumented_exact() {
        let nic = nic();
        let prog = npu_stage(vec![MicroOp::ParseHeader, MicroOp::Hash { count: 2 }]);
        let t = trace(400);
        let wd = Watchdog::default();
        let mut a = SimInstruments::new();
        let ra = simulate_instrumented(
            &nic,
            &prog,
            &t,
            &FaultPlan::none(),
            &wd,
            &SimConfig::exact(),
            &mut a,
        )
        .unwrap();
        let mut scratch = SimScratch::new();
        let mut b = SimInstruments::new();
        let rb = simulate_streamed_instrumented(
            &nic,
            &prog,
            t.iter().cloned(),
            &FaultPlan::none(),
            &wd,
            &SimConfig::exact(),
            &mut scratch,
            &mut b,
        )
        .unwrap();
        assert_eq!(ra.latencies, scratch.latencies);
        assert_eq!(ra.avg_latency_cycles.to_bits(), rb.avg_latency_cycles.to_bits());
        assert_eq!(a.stats, b.stats);
        assert!(a.stats.conserved());
    }

    #[test]
    fn unknown_region_rejected() {
        let prog = NicProgram {
            name: "x".into(),
            tables: vec![TableCfg {
                name: "t".into(),
                mem: "l4-cache".into(),
                entry_bytes: 8,
                entries: 8,
                use_flow_cache: false,
            }],
            stages: vec![],
        };
        assert_eq!(
            simulate(&nic(), &prog, &trace(1)).unwrap_err(),
            SimError::UnknownRegion("l4-cache".into())
        );
    }

    #[test]
    fn float_emulation_charged_on_fpu_less_npu() {
        let nic = nic();
        let emu = simulate(&nic, &npu_stage(vec![MicroOp::FloatOps { count: 10 }]), &trace(50))
            .unwrap()
            .avg_latency_cycles;
        let base = simulate(&nic, &npu_stage(vec![]), &trace(50))
            .unwrap()
            .avg_latency_cycles;
        assert!((emu - base - 800.0).abs() < 1.0, "emu {emu} base {base}");

        // The SoC profile has FPUs: 10 float ops cost 20 cycles.
        let soc = profiles::soc_armada();
        let emu_soc = simulate(&soc, &npu_stage(vec![MicroOp::FloatOps { count: 10 }]), &trace(50))
            .unwrap()
            .avg_latency_cycles;
        let base_soc =
            simulate(&soc, &npu_stage(vec![]), &trace(50)).unwrap().avg_latency_cycles;
        assert!((emu_soc - base_soc - 20.0).abs() < 1.0);
    }

    #[test]
    fn energy_scales_with_work() {
        let nic = nic();
        let light = simulate(&nic, &npu_stage(vec![MicroOp::Compute { cycles: 100 }]), &trace(200))
            .unwrap();
        let heavy =
            simulate(&nic, &npu_stage(vec![MicroOp::Compute { cycles: 10_000 }]), &trace(200))
                .unwrap();
        assert!(heavy.energy_mj > 5.0 * light.energy_mj);
    }

    #[test]
    fn faulted_run_degrades_without_panicking() {
        // The acceptance scenario: one accelerator offline and NPU
        // threads lost. The run completes, reports drops, and survivors
        // see degraded latency — no panic anywhere.
        let nic = nic();
        let prog = NicProgram {
            name: "nat".into(),
            tables: vec![TableCfg {
                name: "flows".into(),
                mem: "emem".into(),
                entry_bytes: 24,
                entries: 65536,
                use_flow_cache: true,
            }],
            stages: vec![
                Stage {
                    name: "lookup".into(),
                    unit: StageUnit::Npu,
                    ops: vec![
                        MicroOp::ParseHeader,
                        MicroOp::Hash { count: 1 },
                        MicroOp::TableLookup { table: 0 },
                    ],
                },
                Stage {
                    name: "ck".into(),
                    unit: StageUnit::Accel(AccelKind::Checksum),
                    ops: vec![MicroOp::AccelCall { bytes: BytesSpec::Frame }],
                },
            ],
        };
        let t = trace(500);
        let healthy = simulate(&nic, &prog, &t).unwrap();
        assert_eq!(healthy.completed, 500);

        // Checksum engine down: every packet needs it, so all are counted
        // as accelerator drops.
        let outage = FaultPlan {
            accel_outage: vec![AccelKind::Checksum],
            dead_threads: 1,
            ..FaultPlan::none()
        };
        let r = simulate_with_faults(&nic, &prog, &t, &outage).unwrap();
        assert_eq!(r.accel_drops, 500);
        assert_eq!(r.completed, 0);

        // Flow-cache engine down instead: packets survive but lookups
        // degrade to the backing memory.
        let fc_down = FaultPlan {
            accel_outage: vec![AccelKind::FlowCache],
            dead_threads: 1,
            ..FaultPlan::none()
        };
        let r = simulate_with_faults(&nic, &prog, &t, &fc_down).unwrap();
        assert_eq!(r.completed, 500);
        assert_eq!(r.accel_drops, 0);
        assert!(
            r.avg_latency_cycles > healthy.avg_latency_cycles,
            "faulted {} vs healthy {}",
            r.avg_latency_cycles,
            healthy.avg_latency_cycles
        );
    }

    #[test]
    fn accel_stall_inflates_service_time() {
        let nic = nic();
        let prog = NicProgram {
            name: "ck".into(),
            tables: vec![],
            stages: vec![Stage {
                name: "ck".into(),
                unit: StageUnit::Accel(AccelKind::Checksum),
                ops: vec![MicroOp::AccelCall { bytes: BytesSpec::Frame }],
            }],
        };
        let t = trace(100);
        let healthy = simulate(&nic, &prog, &t).unwrap().avg_latency_cycles;
        let stalled = simulate_with_faults(
            &nic,
            &prog,
            &t,
            &FaultPlan {
                accel_stall: vec![(AccelKind::Checksum, 2_000)],
                ..FaultPlan::none()
            },
        )
        .unwrap()
        .avg_latency_cycles;
        assert!(
            stalled >= healthy + 2_000.0,
            "stalled {stalled} healthy {healthy}"
        );
    }

    #[test]
    fn emem_cache_faults_degrade_lookups() {
        let nic = nic();
        let prog = NicProgram {
            name: "fw".into(),
            tables: vec![TableCfg {
                name: "t".into(),
                mem: "emem".into(),
                entry_bytes: 16,
                entries: 4096,
                use_flow_cache: false,
            }],
            stages: vec![Stage {
                name: "lookup".into(),
                unit: StageUnit::Npu,
                ops: vec![MicroOp::TableLookup { table: 0 }],
            }],
        };
        // Few flows: the healthy EMEM cache converges to hits.
        let t = TraceGenerator::new(11)
            .packets(1000)
            .flows(20)
            .syn_on_first(false)
            .generate();
        let healthy = simulate(&nic, &prog, &t).unwrap();
        let disabled = simulate_with_faults(
            &nic,
            &prog,
            &t,
            &FaultPlan { disable_emem_cache: true, ..FaultPlan::none() },
        )
        .unwrap();
        let thrashed = simulate_with_faults(
            &nic,
            &prog,
            &t,
            &FaultPlan { thrash_emem_cache: true, ..FaultPlan::none() },
        )
        .unwrap();
        assert!(disabled.emem_cache.is_none());
        assert!(disabled.avg_latency_cycles > healthy.avg_latency_cycles);
        assert!(thrashed.avg_latency_cycles > healthy.avg_latency_cycles);
        // Thrash keeps the cache alive but useless: hits stay rare.
        let (hits, misses) = thrashed.emem_cache.unwrap();
        assert!(misses > hits, "hits {hits} misses {misses}");
    }

    #[test]
    fn shrunken_ingress_queue_drops_bursts() {
        let prog = npu_stage(vec![MicroOp::Compute { cycles: 50_000 }]);
        let nic = nic();
        let t = TraceGenerator::new(13)
            .packets(2000)
            .flows(5)
            .rate_pps(5_000_000.0)
            .syn_on_first(false)
            .generate();
        let healthy = simulate(&nic, &prog, &t).unwrap();
        let squeezed = simulate_with_faults(
            &nic,
            &prog,
            &t,
            &FaultPlan { ingress_capacity: Some(4), ..FaultPlan::none() },
        )
        .unwrap();
        assert!(
            squeezed.dropped > healthy.dropped,
            "squeezed {} healthy {}",
            squeezed.dropped,
            healthy.dropped
        );
        assert!(squeezed.completed + squeezed.dropped == 2000);
    }

    #[test]
    fn corrupt_and_truncated_packets_counted() {
        let nic = nic();
        let prog = npu_stage(vec![MicroOp::StreamPayload { table: None, loop_overhead: 0 }]);
        let t = TraceGenerator::new(17)
            .packets(100)
            .sizes(SizeDist::Fixed(1400))
            .syn_on_first(false)
            .generate();

        let corrupt = simulate_with_faults(
            &nic,
            &prog,
            &t,
            &FaultPlan { corrupt_every: 10, ..FaultPlan::none() },
        )
        .unwrap();
        assert_eq!(corrupt.corrupt_drops, 10);
        assert_eq!(corrupt.completed, 90);

        let healthy = simulate(&nic, &prog, &t).unwrap();
        let runt = simulate_with_faults(
            &nic,
            &prog,
            &t,
            &FaultPlan { truncate_every: 1, ..FaultPlan::none() },
        )
        .unwrap();
        assert_eq!(runt.truncated, 100);
        assert_eq!(runt.completed, 100);
        // Runts carry less payload: the stream stage has less to do.
        assert!(runt.avg_latency_cycles < healthy.avg_latency_cycles);
    }

    #[test]
    fn losing_every_thread_is_an_error_not_a_panic() {
        let prog = npu_stage(vec![MicroOp::ParseHeader]);
        let err = simulate_with_faults(
            &nic(),
            &prog,
            &trace(10),
            &FaultPlan { dead_threads: usize::MAX, ..FaultPlan::none() },
        )
        .unwrap_err();
        assert_eq!(err, SimError::NoThreads);
    }

    #[test]
    fn adversarial_stream_payload_trips_watchdog_not_a_spin() {
        // §satellite: a StreamPayload whose loop_overhead × payload_len
        // product is astronomically large must become a counted error —
        // under default caps — rather than wrapping the cycle math or
        // simulating for hours.
        let nic = nic();
        let prog = npu_stage(vec![MicroOp::StreamPayload {
            table: None,
            loop_overhead: u64::MAX / 2,
        }]);
        let t = TraceGenerator::new(23)
            .packets(10)
            .sizes(SizeDist::Fixed(1400))
            .syn_on_first(false)
            .generate();
        let err = simulate(&nic, &prog, &t).unwrap_err();
        match err {
            SimError::Watchdog { packet, ref stage, cycles, limit } => {
                assert_eq!(packet, 0, "first packet must trip the cap");
                assert_eq!(stage, "s");
                assert!(cycles > limit);
                assert_eq!(limit, crate::watchdog::DEFAULT_PACKET_CYCLES);
            }
            other => panic!("expected Watchdog, got {other:?}"),
        }
    }

    #[test]
    fn tiny_caps_trip_on_legitimate_programs() {
        let nic = nic();
        let prog = npu_stage(vec![MicroOp::ParseHeader]);
        let t = trace(100);

        let per_packet = Watchdog { max_cycles_per_packet: Some(10), ..Watchdog::new() };
        assert!(matches!(
            simulate_supervised(&nic, &prog, &t, &FaultPlan::none(), &per_packet),
            Err(SimError::Watchdog { packet: 0, .. })
        ));

        // A total cap below the aggregate cost trips partway through the
        // trace, attributing the packet that crossed it.
        let total = Watchdog { max_total_cycles: Some(1_000), ..Watchdog::new() };
        match simulate_supervised(&nic, &prog, &t, &FaultPlan::none(), &total) {
            Err(SimError::Watchdog { packet, stage, .. }) => {
                assert!(packet > 0, "several packets fit under 1000 cycles");
                assert_eq!(stage, "<run total>");
            }
            other => panic!("expected total-cap Watchdog, got {other:?}"),
        }
    }

    #[test]
    fn expired_deadline_and_cancel_token_time_out() {
        let nic = nic();
        let prog = npu_stage(vec![MicroOp::ParseHeader]);
        let t = trace(10);
        let expired =
            Watchdog { deadline: Some(std::time::Instant::now()), ..Watchdog::new() };
        assert!(matches!(
            simulate_supervised(&nic, &prog, &t, &FaultPlan::none(), &expired),
            Err(SimError::TimedOut)
        ));
        let token = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(true));
        let cancelled = Watchdog { cancel: Some(token), ..Watchdog::new() };
        assert!(matches!(
            simulate_supervised(&nic, &prog, &t, &FaultPlan::none(), &cancelled),
            Err(SimError::TimedOut)
        ));
    }

    #[test]
    fn default_watchdog_leaves_results_bit_unchanged() {
        // The supervised path with default caps must be invisible:
        // identical latencies and energy to the plain entry points.
        let nic = nic();
        let prog = npu_stage(vec![
            MicroOp::ParseHeader,
            MicroOp::Hash { count: 2 },
            MicroOp::StreamPayload { table: None, loop_overhead: 2 },
        ]);
        let t = trace(300);
        let plain = simulate(&nic, &prog, &t).unwrap();
        let supervised =
            simulate_supervised(&nic, &prog, &t, &FaultPlan::none(), &Watchdog::new()).unwrap();
        assert_eq!(plain.latencies, supervised.latencies);
        assert_eq!(plain.energy_mj.to_bits(), supervised.energy_mj.to_bits());
        assert_eq!(plain.per_stage_cycles, supervised.per_stage_cycles);
    }

    #[test]
    fn per_stage_breakdown_reported() {
        let prog = NicProgram {
            name: "two".into(),
            tables: vec![],
            stages: vec![
                Stage {
                    name: "parse".into(),
                    unit: StageUnit::Npu,
                    ops: vec![MicroOp::ParseHeader],
                },
                Stage {
                    name: "mods".into(),
                    unit: StageUnit::Npu,
                    ops: vec![MicroOp::MetadataMod { count: 4 }],
                },
            ],
        };
        let r = simulate(&nic(), &prog, &trace(100)).unwrap();
        assert_eq!(r.per_stage_cycles.len(), 2);
        assert!((r.per_stage_cycles[0].1 - 150.0).abs() < 1.0);
        assert!((r.per_stage_cycles[1].1 - 12.0).abs() < 1.0);
    }

    /// Every observable field must match bit-for-bit (floats compared by
    /// bits: memoization and streaming are exact rewrites, not
    /// approximations).
    fn assert_bit_identical(a: &SimResult, b: &SimResult, what: &str) {
        assert_eq!(a.packets, b.packets, "{what}: packets");
        assert_eq!(a.completed, b.completed, "{what}: completed");
        assert_eq!(a.dropped, b.dropped, "{what}: dropped");
        assert_eq!(a.accel_drops, b.accel_drops, "{what}: accel_drops");
        assert_eq!(a.corrupt_drops, b.corrupt_drops, "{what}: corrupt_drops");
        assert_eq!(a.truncated, b.truncated, "{what}: truncated");
        assert_eq!(
            a.avg_latency_cycles.to_bits(),
            b.avg_latency_cycles.to_bits(),
            "{what}: avg"
        );
        assert_eq!(a.p50_latency_cycles.to_bits(), b.p50_latency_cycles.to_bits(), "{what}: p50");
        assert_eq!(a.p99_latency_cycles.to_bits(), b.p99_latency_cycles.to_bits(), "{what}: p99");
        assert_eq!(a.max_latency_cycles.to_bits(), b.max_latency_cycles.to_bits(), "{what}: max");
        assert_eq!(a.achieved_pps.to_bits(), b.achieved_pps.to_bits(), "{what}: pps");
        assert_eq!(a.flow_cache, b.flow_cache, "{what}: flow_cache");
        assert_eq!(a.emem_cache, b.emem_cache, "{what}: emem_cache");
        assert_eq!(a.energy_mj.to_bits(), b.energy_mj.to_bits(), "{what}: energy");
        assert_eq!(a.per_stage_cycles.len(), b.per_stage_cycles.len(), "{what}: stages");
        for (x, y) in a.per_stage_cycles.iter().zip(&b.per_stage_cycles) {
            assert_eq!(x.0, y.0, "{what}: stage name");
            assert_eq!(x.1.to_bits(), y.1.to_bits(), "{what}: stage cycles");
        }
    }

    /// A corpus of programs spanning every memoization class: pure
    /// payload streaming over an uncached automaton, flow-cache-fronted
    /// lookups, cached-EMEM counters, linear scans, an accelerator stage.
    fn fidelity_corpus() -> Vec<NicProgram> {
        vec![
            NicProgram {
                name: "dpi".into(),
                tables: vec![TableCfg {
                    name: "automaton".into(),
                    mem: "imem".into(),
                    entry_bytes: 8,
                    entries: 4096,
                    use_flow_cache: false,
                }],
                stages: vec![Stage {
                    name: "scan".into(),
                    unit: StageUnit::Npu,
                    ops: vec![
                        MicroOp::ParseHeader,
                        MicroOp::StreamPayload { table: Some(0), loop_overhead: 10 },
                    ],
                }],
            },
            NicProgram {
                name: "nat".into(),
                tables: vec![TableCfg {
                    name: "flows".into(),
                    mem: "emem".into(),
                    entry_bytes: 24,
                    entries: 65_536,
                    use_flow_cache: true,
                }],
                stages: vec![
                    Stage {
                        name: "rewrite".into(),
                        unit: StageUnit::Npu,
                        ops: vec![
                            MicroOp::ParseHeader,
                            MicroOp::Hash { count: 1 },
                            MicroOp::TableLookup { table: 0 },
                            MicroOp::MetadataMod { count: 3 },
                            MicroOp::ChecksumSw,
                        ],
                    },
                    Stage {
                        name: "ck".into(),
                        unit: StageUnit::Accel(AccelKind::Checksum),
                        ops: vec![MicroOp::AccelCall { bytes: BytesSpec::Frame }],
                    },
                ],
            },
            NicProgram {
                name: "stats".into(),
                tables: vec![
                    TableCfg {
                        name: "counters".into(),
                        mem: "emem".into(),
                        entry_bytes: 8,
                        entries: 1024,
                        use_flow_cache: false,
                    },
                    TableCfg {
                        name: "rules".into(),
                        mem: "imem".into(),
                        entry_bytes: 16,
                        entries: 512,
                        use_flow_cache: false,
                    },
                ],
                stages: vec![Stage {
                    name: "count".into(),
                    unit: StageUnit::Npu,
                    ops: vec![
                        MicroOp::CounterUpdate { table: 0 },
                        MicroOp::LinearScan { table: 1 },
                        MicroOp::TableWrite { table: 1 },
                        MicroOp::FloatOps { count: 2 },
                    ],
                }],
            },
        ]
    }

    #[test]
    fn memoized_is_bit_identical_to_exact() {
        let nic = nic();
        let t = TraceGenerator::new(31)
            .packets(1500)
            .flows(300)
            .zipf(1.1)
            .sizes(SizeDist::imix())
            .tcp_share(0.8)
            .generate();
        for prog in fidelity_corpus() {
            for faults in [
                FaultPlan::none(),
                FaultPlan { disable_emem_cache: true, ..FaultPlan::none() },
                FaultPlan { thrash_emem_cache: true, ..FaultPlan::none() },
                FaultPlan { truncate_every: 3, corrupt_every: 7, ..FaultPlan::none() },
                FaultPlan {
                    accel_stall: vec![(AccelKind::Checksum, 500)],
                    dead_threads: 100,
                    ..FaultPlan::none()
                },
            ] {
                let wd = Watchdog::new();
                let fast =
                    simulate_configured(&nic, &prog, &t, &faults, &wd, &SimConfig::default())
                        .unwrap();
                let exact =
                    simulate_configured(&nic, &prog, &t, &faults, &wd, &SimConfig::exact())
                        .unwrap();
                let what = format!("{} under {:?}", prog.name, faults);
                assert_bit_identical(&fast, &exact, &what);
                assert_eq!(fast.latencies, exact.latencies, "{what}: latencies");
            }
        }
    }

    #[test]
    fn streamed_matches_materialized_trace() {
        let nic = nic();
        let gen = TraceGenerator::new(37)
            .packets(1200)
            .flows(150)
            .sizes(SizeDist::imix())
            .arrival(clara_workload::Arrival::Poisson)
            .syn_on_first(false);
        let trace = gen.generate();
        let mut scratch = SimScratch::new();
        for prog in fidelity_corpus() {
            let eager = simulate(&nic, &prog, &trace).unwrap();
            let lazy = simulate_streamed(
                &nic,
                &prog,
                gen.stream(),
                &FaultPlan::none(),
                &Watchdog::new(),
                &SimConfig::default(),
                &mut scratch,
            )
            .unwrap();
            assert_bit_identical(&eager, &lazy, &prog.name);
            // Latencies live in the scratch on the streamed path.
            assert!(lazy.latencies.is_empty());
            assert_eq!(scratch.latencies(), &eager.latencies[..], "{}", prog.name);
        }
    }

    #[test]
    fn scratch_reuse_never_changes_results() {
        // One scratch across runs of *different* programs, NICs, and
        // traces must equal fresh-scratch runs: arenas carry capacity,
        // never state.
        let nics = [nic(), profiles::soc_armada()];
        let mut reused = SimScratch::new();
        for round in 0..2 {
            for n in &nics {
                for prog in fidelity_corpus() {
                    // Skip programs placing tables in regions this NIC lacks.
                    if prog.tables.iter().any(|t| n.memory_named(&t.mem).is_none()) {
                        continue;
                    }
                    let gen = TraceGenerator::new(41 + round)
                        .packets(400)
                        .flows(64)
                        .sizes(SizeDist::Fixed(700));
                    let mut fresh = SimScratch::new();
                    let cfg = SimConfig::default();
                    let (fp, wd) = (FaultPlan::none(), Watchdog::new());
                    let a =
                        simulate_streamed(n, &prog, gen.stream(), &fp, &wd, &cfg, &mut reused)
                            .unwrap();
                    let lat_a = reused.latencies().to_vec();
                    let b = simulate_streamed(n, &prog, gen.stream(), &fp, &wd, &cfg, &mut fresh)
                        .unwrap();
                    assert_bit_identical(&a, &b, &prog.name);
                    assert_eq!(lat_a, fresh.latencies());
                }
            }
        }
    }

    #[test]
    fn watchdog_trips_identically_with_memoization() {
        // The per-packet cap must see the same saturating totals on the
        // memoized path, including the stage attribution.
        let nic = nic();
        let prog = npu_stage(vec![MicroOp::StreamPayload {
            table: None,
            loop_overhead: u64::MAX / 2,
        }]);
        let t = TraceGenerator::new(23)
            .packets(10)
            .sizes(SizeDist::Fixed(1400))
            .syn_on_first(false)
            .generate();
        let wd = Watchdog::new();
        let fast = simulate_configured(&nic, &prog, &t, &FaultPlan::none(), &wd, &SimConfig::default());
        let exact = simulate_configured(&nic, &prog, &t, &FaultPlan::none(), &wd, &SimConfig::exact());
        assert_eq!(fast.unwrap_err(), exact.unwrap_err());
    }
}
