//! Property tests on simulator telemetry: instrumentation must observe
//! without perturbing, and its counters must conserve packets.

use clara_lnic::profiles;
use clara_nicsim::{
    simulate_configured, simulate_instrumented, AccelKind, FaultPlan, MicroOp, NicProgram,
    SimConfig, SimInstruments, Stage, StageUnit, TableCfg, Watchdog,
};
use clara_workload::{SizeDist, TraceGenerator};
use proptest::prelude::*;

/// Three tables spanning the memoization classes: uncached IMEM,
/// cached EMEM, and flow-cache-fronted EMEM.
fn prop_tables() -> Vec<TableCfg> {
    vec![
        TableCfg {
            name: "imem_t".into(),
            mem: "imem".into(),
            entry_bytes: 8,
            entries: 2048,
            use_flow_cache: false,
        },
        TableCfg {
            name: "emem_t".into(),
            mem: "emem".into(),
            entry_bytes: 16,
            entries: 8192,
            use_flow_cache: false,
        },
        TableCfg {
            name: "fc_t".into(),
            mem: "emem".into(),
            entry_bytes: 24,
            entries: 4096,
            use_flow_cache: true,
        },
    ]
}

/// Any NPU micro-op over the three [`prop_tables`] tables.
fn arb_op() -> impl Strategy<Value = MicroOp> {
    prop_oneof![
        (1u64..5_000).prop_map(|cycles| MicroOp::Compute { cycles }),
        Just(MicroOp::ParseHeader),
        (1u64..8).prop_map(|count| MicroOp::MetadataMod { count }),
        (1u64..4).prop_map(|count| MicroOp::Hash { count }),
        (0usize..3).prop_map(|table| MicroOp::TableLookup { table }),
        (0usize..3).prop_map(|table| MicroOp::TableWrite { table }),
        (0usize..3).prop_map(|table| MicroOp::CounterUpdate { table }),
        (0usize..2).prop_map(|table| MicroOp::LinearScan { table }),
        (0u64..20).prop_map(|loop_overhead| MicroOp::StreamPayload { table: None, loop_overhead }),
        (0usize..3, 0u64..20).prop_map(|(t, loop_overhead)| MicroOp::StreamPayload {
            table: Some(t),
            loop_overhead,
        }),
        Just(MicroOp::ChecksumSw),
        (1u64..5).prop_map(|count| MicroOp::FloatOps { count }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Counter conservation and observational purity: for random
    /// (program, trace, fault-plan) triples, an instrumented run is
    /// bit-identical to the uninstrumented run, its counters mirror the
    /// result, and every injected packet is accounted to completion or
    /// exactly one drop cause.
    #[test]
    fn telemetry_conserves_and_never_perturbs(
        stages in proptest::collection::vec(proptest::collection::vec(arb_op(), 1..4), 1..3),
        seed in any::<u64>(),
        engine_knobs in (
            any::<bool>(),
            any::<bool>(),
            prop_oneof![Just(None), (1u64..32).prop_map(Some)],
        ),
        shape in (50usize..250, 1usize..300, 0usize..1500, 10_000.0f64..2_000_000.0),
        fault_knobs in (
            any::<bool>(),
            any::<bool>(),
            any::<bool>(),
            0u64..5,
            0u64..5,
            0usize..500,
        ),
        ingress_capacity in prop_oneof![Just(None), (1usize..32).prop_map(Some)],
    ) {
        let (with_accel, memoize, timeline) = engine_knobs;
        let (packets, flows, payload, rate) = shape;
        let (disable_emem, thrash_emem, fc_outage, corrupt_every, truncate_every, dead_threads) =
            fault_knobs;
        let nic = profiles::netronome_agilio_cx40();
        let mut all_stages: Vec<Stage> = stages
            .into_iter()
            .enumerate()
            .map(|(i, ops)| Stage { name: format!("s{i}"), unit: StageUnit::Npu, ops })
            .collect();
        if with_accel {
            all_stages.push(Stage {
                name: "ck".into(),
                unit: StageUnit::Accel(AccelKind::Checksum),
                ops: vec![MicroOp::AccelCall { bytes: clara_nicsim::BytesSpec::Frame }],
            });
        }
        let prog = NicProgram { name: "prop".into(), tables: prop_tables(), stages: all_stages };
        let trace = TraceGenerator::new(seed)
            .packets(packets)
            .flows(flows)
            .rate_pps(rate)
            .sizes(SizeDist::Fixed(payload))
            .generate();
        let faults = FaultPlan {
            accel_outage: if fc_outage { vec![AccelKind::FlowCache] } else { vec![] },
            disable_emem_cache: disable_emem,
            thrash_emem_cache: thrash_emem,
            corrupt_every,
            truncate_every,
            dead_threads,
            ingress_capacity,
            ..FaultPlan::none()
        };
        let wd = Watchdog::default();
        let cfg = SimConfig { memoize, ..SimConfig::default() };
        let plain = simulate_configured(&nic, &prog, &trace, &faults, &wd, &cfg);
        let mut instr = match timeline {
            Some(n) => SimInstruments::with_timeline(n),
            None => SimInstruments::new(),
        };
        let seen = simulate_instrumented(&nic, &prog, &trace, &faults, &wd, &cfg, &mut instr);
        match (plain, seen) {
            (Ok(p), Ok(s)) => {
                // Bit-identity: telemetry must never perturb results.
                prop_assert_eq!(&p.latencies, &s.latencies);
                prop_assert_eq!(p.completed, s.completed);
                prop_assert_eq!(p.dropped, s.dropped);
                prop_assert_eq!(p.accel_drops, s.accel_drops);
                prop_assert_eq!(p.corrupt_drops, s.corrupt_drops);
                prop_assert_eq!(p.truncated, s.truncated);
                prop_assert_eq!(p.flow_cache, s.flow_cache);
                prop_assert_eq!(p.emem_cache, s.emem_cache);
                prop_assert_eq!(p.energy_mj.to_bits(), s.energy_mj.to_bits());
                prop_assert_eq!(p.achieved_pps.to_bits(), s.achieved_pps.to_bits());

                // Conservation: injected == delivered + Σ drops-by-cause.
                let st = &instr.stats;
                prop_assert!(st.conserved(), "{:?}", st);
                prop_assert_eq!(st.injected, s.packets as u64);
                prop_assert_eq!(st.completed, s.completed as u64);
                prop_assert_eq!(st.overflow_drops, s.dropped as u64);
                prop_assert_eq!(st.fault_corrupt_drops, s.corrupt_drops as u64);
                prop_assert_eq!(st.fault_accel_drops, s.accel_drops as u64);
                prop_assert_eq!(st.truncated, s.truncated as u64);
                prop_assert_eq!(
                    (st.emem_cache_hits, st.emem_cache_misses),
                    s.emem_cache.unwrap_or((0, 0))
                );
                // Island threads cover every live thread exactly once.
                let hw_threads: usize = nic
                    .units()
                    .iter()
                    .filter(|u| u.class == clara_lnic::ComputeClass::GeneralCore)
                    .map(|u| u.threads)
                    .sum();
                let pool: u64 = st.islands.iter().map(|i| i.threads).sum();
                prop_assert_eq!(pool as usize, hw_threads - dead_threads);
                // The timeline respects its packet budget.
                if let (Some(n), Some(tl)) = (timeline, instr.timeline.as_ref()) {
                    prop_assert!(tl.spans.iter().all(|sp| sp.packet < n));
                }
            }
            (plain, seen) => prop_assert_eq!(plain.map(|_| ()), seen.map(|_| ())),
        }
    }
}
