//! Property tests on simulator invariants.

use clara_lnic::profiles;
use clara_nicsim::{simulate, MicroOp, NicProgram, Stage, StageUnit, TableCfg};
use clara_workload::{SizeDist, TraceGenerator};
use proptest::prelude::*;

fn prog(ops: Vec<MicroOp>, tables: Vec<TableCfg>) -> NicProgram {
    NicProgram {
        name: "prop".into(),
        tables,
        stages: vec![Stage { name: "s".into(), unit: StageUnit::Npu, ops }],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation: every offered packet either completes or is dropped.
    #[test]
    fn packets_conserved(
        packets in 1usize..400,
        flows in 1usize..200,
        rate in 1_000.0f64..10_000_000.0,
    ) {
        let nic = profiles::netronome_agilio_cx40();
        let trace = TraceGenerator::new(1)
            .packets(packets)
            .flows(flows)
            .rate_pps(rate)
            .generate();
        let r = simulate(&nic, &prog(vec![MicroOp::ParseHeader], vec![]), &trace).unwrap();
        prop_assert_eq!(r.completed + r.dropped, r.packets);
        prop_assert_eq!(r.latencies.len(), r.completed);
    }

    /// Latency is never below the program's intrinsic cost, and the
    /// percentile ordering always holds.
    #[test]
    fn latency_ordering(compute in 1u64..50_000, packets in 10usize..300) {
        let nic = profiles::netronome_agilio_cx40();
        let trace = TraceGenerator::new(2)
            .packets(packets)
            .flows(packets)
            .rate_pps(10_000.0)
            .generate();
        let r = simulate(&nic, &prog(vec![MicroOp::Compute { cycles: compute }], vec![]), &trace)
            .unwrap();
        prop_assert!(r.p50_latency_cycles <= r.p99_latency_cycles + 1e-9);
        prop_assert!(r.p99_latency_cycles <= r.max_latency_cycles + 1e-9);
        // Ingress + egress hubs (50 + 50) plus the compute itself.
        prop_assert!(r.avg_latency_cycles >= (compute + 100) as f64 - 1e-9);
    }

    /// Adding work never reduces mean latency (monotonicity in the
    /// program, fixed workload).
    #[test]
    fn more_work_never_faster(extra in 1u64..10_000) {
        let nic = profiles::netronome_agilio_cx40();
        let trace = TraceGenerator::new(3).packets(200).rate_pps(10_000.0).generate();
        let base = simulate(&nic, &prog(vec![MicroOp::Compute { cycles: 100 }], vec![]), &trace)
            .unwrap()
            .avg_latency_cycles;
        let heavier = simulate(
            &nic,
            &prog(
                vec![MicroOp::Compute { cycles: 100 }, MicroOp::Compute { cycles: extra }],
                vec![],
            ),
            &trace,
        )
        .unwrap()
        .avg_latency_cycles;
        prop_assert!(heavier >= base);
    }

    /// Payload streaming latency is monotone in payload size.
    #[test]
    fn stream_monotone_in_payload(small in 0usize..700, delta in 1usize..700) {
        let nic = profiles::netronome_agilio_cx40();
        let mk = |payload: usize| {
            TraceGenerator::new(4)
                .packets(120)
                .rate_pps(10_000.0)
                .sizes(SizeDist::Fixed(payload))
                .syn_on_first(false)
                .generate()
        };
        let p = prog(vec![MicroOp::StreamPayload { table: None, loop_overhead: 3 }], vec![]);
        let a = simulate(&nic, &p, &mk(small)).unwrap().avg_latency_cycles;
        let b = simulate(&nic, &p, &mk(small + delta)).unwrap().avg_latency_cycles;
        prop_assert!(b >= a, "payload {small} -> {a}, {} -> {b}", small + delta);
    }

    /// Table lookups cost at least the region's access latency, whatever
    /// the geometry.
    #[test]
    fn lookup_cost_bounded_below(
        entries in 1u64..100_000,
        entry_bytes in 1usize..64,
    ) {
        let nic = profiles::netronome_agilio_cx40();
        let trace = TraceGenerator::new(5).packets(100).rate_pps(10_000.0).generate();
        let table = TableCfg {
            name: "t".into(),
            mem: "imem".into(),
            entry_bytes,
            entries,
            use_flow_cache: false,
        };
        let with = simulate(&nic, &prog(vec![MicroOp::TableLookup { table: 0 }], vec![table.clone()]), &trace)
            .unwrap()
            .avg_latency_cycles;
        let without = simulate(&nic, &prog(vec![], vec![table]), &trace)
            .unwrap()
            .avg_latency_cycles;
        prop_assert!(with - without >= 250.0 - 1e-9, "marginal lookup {}", with - without);
    }

    /// Determinism: identical runs produce identical results.
    #[test]
    fn simulation_deterministic(seed in any::<u64>()) {
        let nic = profiles::netronome_agilio_cx40();
        let trace = TraceGenerator::new(seed).packets(150).flows(40).generate();
        let p = prog(
            vec![MicroOp::ParseHeader, MicroOp::Hash { count: 2 }],
            vec![],
        );
        let a = simulate(&nic, &p, &trace).unwrap();
        let b = simulate(&nic, &p, &trace).unwrap();
        prop_assert_eq!(a.latencies, b.latencies);
        prop_assert_eq!(a.dropped, b.dropped);
    }
}
