//! Property tests on simulator invariants.

use clara_lnic::profiles;
use clara_nicsim::{
    simulate, simulate_configured, simulate_streamed, AccelKind, CostCache, FaultPlan, MicroOp,
    NicProgram, SimConfig, SimError, SimResult, SimScratch, Stage, StageUnit, TableCfg, Watchdog,
};
use clara_workload::{SizeDist, Trace, TraceGenerator};
use proptest::prelude::*;

fn prog(ops: Vec<MicroOp>, tables: Vec<TableCfg>) -> NicProgram {
    NicProgram {
        name: "prop".into(),
        tables,
        stages: vec![Stage { name: "s".into(), unit: StageUnit::Npu, ops }],
    }
}

/// Three tables spanning the memoization classes: uncached IMEM,
/// cached EMEM, and flow-cache-fronted EMEM.
fn prop_tables() -> Vec<TableCfg> {
    vec![
        TableCfg {
            name: "imem_t".into(),
            mem: "imem".into(),
            entry_bytes: 8,
            entries: 2048,
            use_flow_cache: false,
        },
        TableCfg {
            name: "emem_t".into(),
            mem: "emem".into(),
            entry_bytes: 16,
            entries: 8192,
            use_flow_cache: false,
        },
        TableCfg {
            name: "fc_t".into(),
            mem: "emem".into(),
            entry_bytes: 24,
            entries: 4096,
            use_flow_cache: true,
        },
    ]
}

/// Any NPU micro-op over the three [`prop_tables`] tables.
fn arb_op() -> impl Strategy<Value = MicroOp> {
    prop_oneof![
        (1u64..5_000).prop_map(|cycles| MicroOp::Compute { cycles }),
        Just(MicroOp::ParseHeader),
        (1u64..8).prop_map(|count| MicroOp::MetadataMod { count }),
        (1u64..4).prop_map(|count| MicroOp::Hash { count }),
        (0usize..3).prop_map(|table| MicroOp::TableLookup { table }),
        (0usize..3).prop_map(|table| MicroOp::TableWrite { table }),
        (0usize..3).prop_map(|table| MicroOp::CounterUpdate { table }),
        (0usize..2).prop_map(|table| MicroOp::LinearScan { table }),
        (0u64..20).prop_map(|loop_overhead| MicroOp::StreamPayload { table: None, loop_overhead }),
        (0usize..3, 0u64..20).prop_map(|(t, loop_overhead)| MicroOp::StreamPayload {
            table: Some(t),
            loop_overhead,
        }),
        Just(MicroOp::ChecksumSw),
        (1u64..5).prop_map(|count| MicroOp::FloatOps { count }),
    ]
}

/// The random (program, trace, fault-plan, watchdog) quadruple shared by
/// the configuration-equivalence properties below.
#[allow(clippy::too_many_arguments)]
fn build_case(
    stages: Vec<Vec<MicroOp>>,
    seed: u64,
    packets: usize,
    flows: usize,
    payload: usize,
    rate: f64,
    fault_knobs: (bool, bool, bool, u64, u64, usize),
    caps: (Option<usize>, Option<u64>),
) -> (NicProgram, Trace, FaultPlan, Watchdog) {
    let (disable_emem, thrash_emem, fc_outage, corrupt_every, truncate_every, dead_threads) =
        fault_knobs;
    let (ingress_capacity, pkt_cap) = caps;
    let prog = NicProgram {
        name: "prop".into(),
        tables: prop_tables(),
        stages: stages
            .into_iter()
            .enumerate()
            .map(|(i, ops)| Stage { name: format!("s{i}"), unit: StageUnit::Npu, ops })
            .collect(),
    };
    let trace = TraceGenerator::new(seed)
        .packets(packets)
        .flows(flows)
        .rate_pps(rate)
        .sizes(SizeDist::Fixed(payload))
        .generate();
    let faults = FaultPlan {
        accel_outage: if fc_outage { vec![AccelKind::FlowCache] } else { vec![] },
        disable_emem_cache: disable_emem,
        thrash_emem_cache: thrash_emem,
        corrupt_every,
        truncate_every,
        dead_threads,
        ingress_capacity,
        ..FaultPlan::none()
    };
    let wd = Watchdog { max_cycles_per_packet: pkt_cap, ..Watchdog::new() };
    (prog, trace, faults, wd)
}

/// Every observable of two simulation outcomes, compared bit-for-bit
/// (floats via `to_bits`, errors via their rendering).
fn identical(a: &Result<SimResult, SimError>, b: &Result<SimResult, SimError>) -> bool {
    match (a, b) {
        (Ok(x), Ok(y)) => {
            x.latencies == y.latencies
                && x.packets == y.packets
                && x.completed == y.completed
                && x.dropped == y.dropped
                && x.accel_drops == y.accel_drops
                && x.corrupt_drops == y.corrupt_drops
                && x.truncated == y.truncated
                && x.flow_cache == y.flow_cache
                && x.emem_cache == y.emem_cache
                && x.per_stage_cycles.len() == y.per_stage_cycles.len()
                && x.per_stage_cycles
                    .iter()
                    .zip(&y.per_stage_cycles)
                    .all(|(p, q)| p.0 == q.0 && p.1.to_bits() == q.1.to_bits())
                && x.avg_latency_cycles.to_bits() == y.avg_latency_cycles.to_bits()
                && x.p50_latency_cycles.to_bits() == y.p50_latency_cycles.to_bits()
                && x.p99_latency_cycles.to_bits() == y.p99_latency_cycles.to_bits()
                && x.max_latency_cycles.to_bits() == y.max_latency_cycles.to_bits()
                && x.avg_latency_ns.to_bits() == y.avg_latency_ns.to_bits()
                && x.achieved_pps.to_bits() == y.achieved_pps.to_bits()
                && x.energy_mj.to_bits() == y.energy_mj.to_bits()
        }
        (Err(x), Err(y)) => x.to_string() == y.to_string(),
        _ => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation: every offered packet either completes or is dropped.
    #[test]
    fn packets_conserved(
        packets in 1usize..400,
        flows in 1usize..200,
        rate in 1_000.0f64..10_000_000.0,
    ) {
        let nic = profiles::netronome_agilio_cx40();
        let trace = TraceGenerator::new(1)
            .packets(packets)
            .flows(flows)
            .rate_pps(rate)
            .generate();
        let r = simulate(&nic, &prog(vec![MicroOp::ParseHeader], vec![]), &trace).unwrap();
        prop_assert_eq!(r.completed + r.dropped, r.packets);
        prop_assert_eq!(r.latencies.len(), r.completed);
    }

    /// Latency is never below the program's intrinsic cost, and the
    /// percentile ordering always holds.
    #[test]
    fn latency_ordering(compute in 1u64..50_000, packets in 10usize..300) {
        let nic = profiles::netronome_agilio_cx40();
        let trace = TraceGenerator::new(2)
            .packets(packets)
            .flows(packets)
            .rate_pps(10_000.0)
            .generate();
        let r = simulate(&nic, &prog(vec![MicroOp::Compute { cycles: compute }], vec![]), &trace)
            .unwrap();
        prop_assert!(r.p50_latency_cycles <= r.p99_latency_cycles + 1e-9);
        prop_assert!(r.p99_latency_cycles <= r.max_latency_cycles + 1e-9);
        // Ingress + egress hubs (50 + 50) plus the compute itself.
        prop_assert!(r.avg_latency_cycles >= (compute + 100) as f64 - 1e-9);
    }

    /// Adding work never reduces mean latency (monotonicity in the
    /// program, fixed workload).
    #[test]
    fn more_work_never_faster(extra in 1u64..10_000) {
        let nic = profiles::netronome_agilio_cx40();
        let trace = TraceGenerator::new(3).packets(200).rate_pps(10_000.0).generate();
        let base = simulate(&nic, &prog(vec![MicroOp::Compute { cycles: 100 }], vec![]), &trace)
            .unwrap()
            .avg_latency_cycles;
        let heavier = simulate(
            &nic,
            &prog(
                vec![MicroOp::Compute { cycles: 100 }, MicroOp::Compute { cycles: extra }],
                vec![],
            ),
            &trace,
        )
        .unwrap()
        .avg_latency_cycles;
        prop_assert!(heavier >= base);
    }

    /// Payload streaming latency is monotone in payload size.
    #[test]
    fn stream_monotone_in_payload(small in 0usize..700, delta in 1usize..700) {
        let nic = profiles::netronome_agilio_cx40();
        let mk = |payload: usize| {
            TraceGenerator::new(4)
                .packets(120)
                .rate_pps(10_000.0)
                .sizes(SizeDist::Fixed(payload))
                .syn_on_first(false)
                .generate()
        };
        let p = prog(vec![MicroOp::StreamPayload { table: None, loop_overhead: 3 }], vec![]);
        let a = simulate(&nic, &p, &mk(small)).unwrap().avg_latency_cycles;
        let b = simulate(&nic, &p, &mk(small + delta)).unwrap().avg_latency_cycles;
        prop_assert!(b >= a, "payload {small} -> {a}, {} -> {b}", small + delta);
    }

    /// Table lookups cost at least the region's access latency, whatever
    /// the geometry.
    #[test]
    fn lookup_cost_bounded_below(
        entries in 1u64..100_000,
        entry_bytes in 1usize..64,
    ) {
        let nic = profiles::netronome_agilio_cx40();
        let trace = TraceGenerator::new(5).packets(100).rate_pps(10_000.0).generate();
        let table = TableCfg {
            name: "t".into(),
            mem: "imem".into(),
            entry_bytes,
            entries,
            use_flow_cache: false,
        };
        let with = simulate(&nic, &prog(vec![MicroOp::TableLookup { table: 0 }], vec![table.clone()]), &trace)
            .unwrap()
            .avg_latency_cycles;
        let without = simulate(&nic, &prog(vec![], vec![table]), &trace)
            .unwrap()
            .avg_latency_cycles;
        prop_assert!(with - without >= 250.0 - 1e-9, "marginal lookup {}", with - without);
    }

    /// Signature memoization is an exact rewrite: random (program, trace,
    /// fault-plan, watchdog) quadruples must simulate bit-identically with
    /// memoization on vs. off — same latencies, same counters, same energy
    /// bits, and the same error when a tight cycle cap trips.
    #[test]
    fn memoization_is_bit_exact(
        stages in proptest::collection::vec(proptest::collection::vec(arb_op(), 1..4), 1..3),
        seed in any::<u64>(),
        packets in 50usize..250,
        flows in 1usize..300,
        payload in 0usize..1500,
        rate in 10_000.0f64..2_000_000.0,
        fault_knobs in (
            any::<bool>(),
            any::<bool>(),
            any::<bool>(),
            0u64..5,
            0u64..5,
            0usize..500,
        ),
        caps in (
            prop_oneof![Just(None), (1usize..32).prop_map(Some)],
            prop_oneof![Just(None), (10_000u64..500_000).prop_map(Some)],
        ),
    ) {
        let (disable_emem, thrash_emem, fc_outage, corrupt_every, truncate_every, dead_threads) =
            fault_knobs;
        let (ingress_capacity, pkt_cap) = caps;
        let nic = profiles::netronome_agilio_cx40();
        let prog = NicProgram {
            name: "prop".into(),
            tables: prop_tables(),
            stages: stages
                .into_iter()
                .enumerate()
                .map(|(i, ops)| Stage { name: format!("s{i}"), unit: StageUnit::Npu, ops })
                .collect(),
        };
        let trace = TraceGenerator::new(seed)
            .packets(packets)
            .flows(flows)
            .rate_pps(rate)
            .sizes(SizeDist::Fixed(payload))
            .generate();
        let faults = FaultPlan {
            accel_outage: if fc_outage { vec![AccelKind::FlowCache] } else { vec![] },
            disable_emem_cache: disable_emem,
            thrash_emem_cache: thrash_emem,
            corrupt_every,
            truncate_every,
            dead_threads,
            ingress_capacity,
            ..FaultPlan::none()
        };
        let wd = Watchdog { max_cycles_per_packet: pkt_cap, ..Watchdog::new() };
        let fast = simulate_configured(&nic, &prog, &trace, &faults, &wd, &SimConfig::default());
        let exact = simulate_configured(&nic, &prog, &trace, &faults, &wd, &SimConfig::exact());
        match (fast, exact) {
            (Ok(f), Ok(e)) => {
                prop_assert_eq!(f.latencies, e.latencies);
                prop_assert_eq!(f.completed, e.completed);
                prop_assert_eq!(f.dropped, e.dropped);
                prop_assert_eq!(f.accel_drops, e.accel_drops);
                prop_assert_eq!(f.corrupt_drops, e.corrupt_drops);
                prop_assert_eq!(f.truncated, e.truncated);
                prop_assert_eq!(f.flow_cache, e.flow_cache);
                prop_assert_eq!(f.emem_cache, e.emem_cache);
                prop_assert_eq!(f.energy_mj.to_bits(), e.energy_mj.to_bits());
                prop_assert_eq!(f.achieved_pps.to_bits(), e.achieved_pps.to_bits());
                prop_assert_eq!(f.p99_latency_cycles.to_bits(), e.p99_latency_cycles.to_bits());
            }
            (fast, exact) => prop_assert_eq!(fast.map(|_| ()), exact.map(|_| ())),
        }
    }

    /// The batched SoA kernel, the scalar memoized loop, and the exact
    /// per-packet path are one simulator three ways: on random (program,
    /// trace, fault-plan) triples all three configurations must agree
    /// bit-for-bit — including when the kernel refuses a run (live
    /// stages, cache thrash, queue overflow) and falls back to scalar.
    #[test]
    fn batch_scalar_and_exact_agree(
        stages in proptest::collection::vec(proptest::collection::vec(arb_op(), 1..4), 1..3),
        seed in any::<u64>(),
        packets in 50usize..250,
        flows in 1usize..300,
        payload in 0usize..1500,
        rate in 10_000.0f64..2_000_000.0,
        fault_knobs in (
            any::<bool>(),
            any::<bool>(),
            any::<bool>(),
            0u64..5,
            0u64..5,
            0usize..500,
        ),
        caps in (
            prop_oneof![Just(None), (1usize..32).prop_map(Some)],
            prop_oneof![Just(None), (10_000u64..500_000).prop_map(Some)],
        ),
    ) {
        let (prog, trace, faults, wd) =
            build_case(stages, seed, packets, flows, payload, rate, fault_knobs, caps);
        let nic = profiles::netronome_agilio_cx40();
        let batched = simulate_configured(&nic, &prog, &trace, &faults, &wd, &SimConfig::default());
        let scalar = simulate_configured(
            &nic, &prog, &trace, &faults, &wd,
            &SimConfig { batch: false, ..SimConfig::default() },
        );
        let exact = simulate_configured(&nic, &prog, &trace, &faults, &wd, &SimConfig::exact());
        prop_assert!(identical(&batched, &scalar), "batched != scalar memoized");
        prop_assert!(identical(&scalar, &exact), "scalar memoized != exact");
    }

    /// Island-parallel DES is an execution strategy, not a semantics:
    /// random triples simulate bit-identically with islands on vs. off,
    /// fault plans and watchdog caps included.
    #[test]
    fn islands_identical_to_sequential(
        stages in proptest::collection::vec(proptest::collection::vec(arb_op(), 1..4), 1..3),
        seed in any::<u64>(),
        packets in 50usize..250,
        flows in 1usize..300,
        payload in 0usize..1500,
        rate in 10_000.0f64..2_000_000.0,
        fault_knobs in (
            any::<bool>(),
            any::<bool>(),
            any::<bool>(),
            0u64..5,
            0u64..5,
            0usize..500,
        ),
        caps in (
            prop_oneof![Just(None), (1usize..32).prop_map(Some)],
            prop_oneof![Just(None), (10_000u64..500_000).prop_map(Some)],
        ),
    ) {
        let (prog, trace, faults, wd) =
            build_case(stages, seed, packets, flows, payload, rate, fault_knobs, caps);
        let nic = profiles::netronome_agilio_cx40();
        let seq = simulate_configured(&nic, &prog, &trace, &faults, &wd, &SimConfig::default());
        let par = simulate_configured(&nic, &prog, &trace, &faults, &wd, &SimConfig::islands());
        prop_assert!(identical(&par, &seq), "islands != sequential");
    }

    /// The shared cost cache is invisible in results: workers racing on
    /// one [`CostCache`] while simulating the same random (program,
    /// trace, fault-plan, watchdog) case agree bit-for-bit with the
    /// per-run-memo path and the exact path — and a warm-cache rerun
    /// (pure cross-run reuse, local memo empty) agrees too.
    #[test]
    fn shared_cost_cache_bit_exact(
        stages in proptest::collection::vec(proptest::collection::vec(arb_op(), 1..4), 1..3),
        seed in any::<u64>(),
        packets in 50usize..250,
        flows in 1usize..300,
        payload in 0usize..1500,
        rate in 10_000.0f64..2_000_000.0,
        fault_knobs in (
            any::<bool>(),
            any::<bool>(),
            any::<bool>(),
            0u64..5,
            0u64..5,
            0usize..500,
        ),
        caps in (
            prop_oneof![Just(None), (1usize..32).prop_map(Some)],
            prop_oneof![Just(None), (10_000u64..500_000).prop_map(Some)],
        ),
    ) {
        let (prog, trace, faults, wd) =
            build_case(stages, seed, packets, flows, payload, rate, fault_knobs, caps);
        let nic = profiles::netronome_agilio_cx40();
        let memo = simulate_configured(&nic, &prog, &trace, &faults, &wd, &SimConfig::default());
        let exact = simulate_configured(&nic, &prog, &trace, &faults, &wd, &SimConfig::exact());
        prop_assert!(identical(&memo, &exact), "per-run memo != exact");

        let cache = std::sync::Arc::new(CostCache::new());
        let run_shared = |cache: &std::sync::Arc<CostCache>| {
            let mut scratch = SimScratch::new();
            scratch.attach_cost_cache(std::sync::Arc::clone(cache));
            simulate_streamed(
                &nic, &prog, trace.iter().cloned(), &faults, &wd,
                &SimConfig::default(), &mut scratch,
            )
            .map(|mut r| {
                r.latencies = scratch.latencies().to_vec();
                r
            })
        };
        let results: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..3).map(|_| s.spawn(|| run_shared(&cache))).collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });
        for r in &results {
            prop_assert!(identical(r, &memo), "shared-cache worker != per-run memo");
        }
        // Rerun against the warm cache: every pure signature resolves
        // from the shared layer while the run-local memo starts empty.
        let warm = run_shared(&cache);
        prop_assert!(identical(&warm, &memo), "warm shared-cache rerun != per-run memo");
    }

    /// Determinism: identical runs produce identical results.
    #[test]
    fn simulation_deterministic(seed in any::<u64>()) {
        let nic = profiles::netronome_agilio_cx40();
        let trace = TraceGenerator::new(seed).packets(150).flows(40).generate();
        let p = prog(
            vec![MicroOp::ParseHeader, MicroOp::Hash { count: 2 }],
            vec![],
        );
        let a = simulate(&nic, &p, &trace).unwrap();
        let b = simulate(&nic, &p, &trace).unwrap();
        prop_assert_eq!(a.latencies, b.latencies);
        prop_assert_eq!(a.dropped, b.dropped);
    }
}
