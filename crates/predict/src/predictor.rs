//! The main prediction pipeline.

use crate::classes::{enumerate_classes, PacketClass};
use crate::queueing::{accel_wait, pool_wait};
use clara_cir::CirModule;
use clara_dataflow::{extract, DataflowGraph, DfNode};
use clara_lang::StateKind;
use clara_lnic::AccelKind;
use clara_map::{
    node_compute_cost, solve_mapping_seeded, state_access_cost, CostCtx, IlpSeed, MapError,
    MapInput, Mapping, RunDeadline, SolveBudget, SolverConfig, StateClass, StateSpec, UnitChoice,
};
use clara_microbench::NicParameters;
use clara_workload::WorkloadProfile;
use std::collections::HashMap;

/// Packets spill payload past this many bytes (databook: packets smaller
/// than 1 kB reside in the CTM entirely).
const RESIDENCY_BYTES: f64 = 1024.0;

/// Default cache-hit assumption for DPI automaton tables.
const DPI_HIT_DEFAULT: f64 = 0.2;

/// Errors from prediction.
#[derive(Debug, Clone, PartialEq)]
pub enum PredictError {
    /// Mapping failed.
    Map(MapError),
    /// The cell's [`RunDeadline`] expired before a mapping was found.
    TimedOut,
    /// The run's cancel token was raised while this cell was in flight
    /// (e.g. `--fail-fast` after a sibling's hard failure). The cell was
    /// abandoned, not tried and failed.
    Cancelled,
    /// The cell's prediction panicked; the panic was caught at the sweep
    /// boundary so sibling cells were unaffected.
    Panicked {
        /// Index of the panicking cell in the sweep's scenario order.
        cell: usize,
        /// The panic payload, stringified (`&str`/`String` payloads are
        /// preserved verbatim).
        payload: String,
    },
    /// The cell's result slot was never filled — its worker died without
    /// reporting. Should be unreachable now that cells are
    /// panic-isolated; kept so a future worker bug degrades to a
    /// per-cell error instead of a process abort.
    Lost {
        /// Index of the lost cell in the sweep's scenario order.
        cell: usize,
    },
}

impl core::fmt::Display for PredictError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PredictError::Map(e) => write!(f, "mapping failed: {e}"),
            PredictError::TimedOut => write!(f, "prediction deadline exceeded"),
            PredictError::Cancelled => write!(f, "prediction cancelled"),
            PredictError::Panicked { cell, payload } => {
                write!(f, "cell {cell} panicked: {payload}")
            }
            PredictError::Lost { cell } => {
                write!(f, "cell {cell} lost: worker died without reporting")
            }
        }
    }
}

impl std::error::Error for PredictError {}

impl From<MapError> for PredictError {
    fn from(e: MapError) -> Self {
        match e {
            MapError::TimedOut => PredictError::TimedOut,
            other => PredictError::Map(other),
        }
    }
}

/// Prediction for one packet class.
#[derive(Debug, Clone)]
pub struct ClassPrediction {
    /// Class name.
    pub name: String,
    /// Fraction of traffic.
    pub share: f64,
    /// Class payload size, bytes.
    pub payload: f64,
    /// Predicted per-packet latency in cycles, including queueing.
    pub latency_cycles: f64,
}

/// The full §3.5 performance profile.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// Expected per-packet latency in cycles (class-share weighted).
    pub avg_latency_cycles: f64,
    /// Same in nanoseconds at the NIC clock.
    pub avg_latency_ns: f64,
    /// Per-class breakdown (the paper's "TCP SYN packets experience
    /// higher latency ..." style of output).
    pub per_class: Vec<ClassPrediction>,
    /// The ILP mapping behind the numbers.
    pub mapping: Mapping,
    /// Idealized sustainable throughput in packets per second.
    pub throughput_pps: f64,
    /// Estimated energy per packet, nanojoules.
    pub energy_nj_per_packet: f64,
    /// The resource limiting throughput.
    pub bottleneck: String,
    /// The extracted dataflow graph (for reporting / porting hints).
    pub graph: DataflowGraph,
}

/// Resolve `(state name, region name)` pins to index pairs.
fn resolve_pins(
    options: &PredictOptions,
    module: &CirModule,
    params: &NicParameters,
) -> Result<Vec<(usize, usize)>, PredictError> {
    options
        .pin_state
        .iter()
        .map(|(state, region)| {
            let s = module
                .states
                .iter()
                .position(|st| &st.name == state)
                .ok_or_else(|| {
                    PredictError::Map(MapError::BadInput(format!("unknown state `{state}`")))
                })?;
            let m = params
                .mems
                .iter()
                .position(|me| &me.name == region)
                .ok_or_else(|| {
                    PredictError::Map(MapError::BadInput(format!("unknown region `{region}`")))
                })?;
            Ok((s, m))
        })
        .collect()
}

/// Build the [`StateSpec`]s the mapper needs from a lowered module.
pub fn state_specs(module: &CirModule) -> Vec<StateSpec> {
    module
        .states
        .iter()
        .map(|s| StateSpec {
            name: s.name.clone(),
            class: match s.kind {
                StateKind::Map { .. } => StateClass::ExactMatch,
                StateKind::Lpm => StateClass::Lpm,
                StateKind::Counter => StateClass::Counter,
                StateKind::Array { .. } => StateClass::Array,
            },
            entries: s.capacity,
            size_bytes: s.size_bytes,
        })
        .collect()
}

/// Node weight for a class: executions per packet, from block weights.
fn node_weight(node: &DfNode, block_weights: &[f64]) -> f64 {
    node.blocks
        .iter()
        .map(|b| block_weights.get(b.0 as usize).copied().unwrap_or(0.0))
        .fold(0.0, f64::max)
}

/// Knobs expressing the developer's porting strategy (§2.3: Clara lets
/// the developer "easily customize offloading strategies").
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PredictOptions {
    /// Price a pure-software port: nothing maps to accelerators.
    pub software_only: bool,
    /// Developer-pinned state placements: `(state name, region name)`.
    pub pin_state: Vec<(String, String)>,
    /// Solver effort cap. When exhausted the mapper degrades gracefully
    /// (incumbent, then greedy) instead of erroring; the resulting
    /// [`Prediction::mapping`] carries the quality tag.
    pub budget: SolveBudget,
    /// Algorithmic solver knobs; the default enables the fast path
    /// (flat tableau, warm starts, memoization), while
    /// [`SolverConfig::baseline`] reproduces the seed solver for
    /// benchmarking.
    pub solver: SolverConfig,
    /// Wall-clock budget for this cell's solve, in milliseconds. `None`
    /// (the default) means unlimited. On expiry the mapper returns its
    /// incumbent (tagged [`clara_map::MappingQuality::Incumbent`]) if it
    /// has one, else the cell fails with [`PredictError::TimedOut`].
    pub deadline_ms: Option<u64>,
    /// Test hook: panic inside the prediction instead of predicting.
    /// Exercises the sweep's panic isolation without contriving an
    /// organically panicking input.
    #[doc(hidden)]
    pub inject_panic: bool,
}

/// Predict the performance of `module` on the NIC described by `params`
/// under `workload`, with the default (auto) strategy.
pub fn predict(
    module: &CirModule,
    params: &NicParameters,
    workload: &WorkloadProfile,
) -> Result<Prediction, PredictError> {
    predict_with_options(module, params, workload, PredictOptions::default())
}

/// The workload-derived inputs of a prediction that do *not* depend on
/// the offered rate or the porting strategy: packet classes (CIR
/// interpreter runs), state specs, and the cache model. Computing these
/// dominates a prediction's cost, so sweeps share one `Prepared` across
/// every grid cell with the same non-rate workload fields (see
/// [`crate::sweep`]). Keep the inputs read here in sync with the sweep's
/// sharing key.
#[derive(Debug, Clone)]
pub(crate) struct Prepared {
    pub(crate) classes: Vec<crate::classes::PacketClass>,
    pub(crate) states: Vec<StateSpec>,
    pub(crate) state_hit: Vec<Vec<f64>>,
    pub(crate) fc_hit: f64,
}

/// Compute the rate-independent inputs: reads `module`, `params`, and
/// the workload's class mix (`tcp_share`, `syn_share`), `avg_payload`,
/// `flows`, and `zipf_alpha` — never `rate_pps`.
pub(crate) fn prepare(
    module: &CirModule,
    params: &NicParameters,
    workload: &WorkloadProfile,
) -> Prepared {
    let classes = enumerate_classes(module, workload);
    let states = state_specs(module);
    let (state_hit, fc_hit) = crate::cache::hit_model(&states, params, workload);
    Prepared { classes, states, state_hit, fc_hit }
}

/// [`predict`] under an explicit porting strategy.
pub fn predict_with_options(
    module: &CirModule,
    params: &NicParameters,
    workload: &WorkloadProfile,
    options: PredictOptions,
) -> Result<Prediction, PredictError> {
    let prepared = prepare(module, params, workload);
    predict_prepared(module, params, workload, &options, &prepared)
}

/// [`predict_with_options`] with telemetry: the two pipeline phases run
/// inside [`clara_telemetry::Sink`] spans (`predict.prepare` — classes,
/// state specs, cache model; `predict.solve` — mapping ILP, queueing,
/// pricing) and the solver's counters land in the sink. With
/// [`clara_telemetry::Sink::Disabled`] this is exactly
/// [`predict_with_options`]: spans run their closures directly and the
/// counter calls are no-ops.
pub fn predict_with_sink(
    module: &CirModule,
    params: &NicParameters,
    workload: &WorkloadProfile,
    options: PredictOptions,
    sink: &mut clara_telemetry::Sink,
) -> Result<Prediction, PredictError> {
    let prepared = sink.span("predict.prepare", || prepare(module, params, workload));
    let result = sink
        .span("predict.solve", || predict_prepared(module, params, workload, &options, &prepared));
    if let Ok(p) = &result {
        let st = &p.mapping.stats;
        sink.count("ilp.nodes_explored", st.nodes_explored);
        sink.count("ilp.lp_solves", st.lp_solves);
        sink.count("ilp.simplex_pivots", st.simplex_pivots);
        sink.count("ilp.warm_start_hits", st.warm_start_hits);
        sink.count("ilp.warm_start_misses", st.warm_start_misses);
        sink.count("ilp.memo_hits", st.memo_hits);
        sink.count("ilp.cell_warm_hits", st.cell_warm_hits);
        sink.count("ilp.cell_warm_misses", st.cell_warm_misses);
    }
    result
}

/// The rate- and strategy-dependent tail of a prediction: mapping ILP,
/// queueing, pricing. Pure in `prepared`, so sweeps may share one
/// `Prepared` across cells.
pub(crate) fn predict_prepared(
    module: &CirModule,
    params: &NicParameters,
    workload: &WorkloadProfile,
    options: &PredictOptions,
    prepared: &Prepared,
) -> Result<Prediction, PredictError> {
    let deadline = RunDeadline::within_ms(options.deadline_ms);
    predict_prepared_limited(module, params, workload, options, prepared, &deadline)
}

/// [`predict_prepared`] with the [`RunDeadline`] supplied by the caller
/// instead of armed from `options.deadline_ms` — the supervisor arms one
/// deadline-plus-cancel-token pair per cell and needs the token shared.
pub(crate) fn predict_prepared_limited(
    module: &CirModule,
    params: &NicParameters,
    workload: &WorkloadProfile,
    options: &PredictOptions,
    prepared: &Prepared,
    deadline: &RunDeadline,
) -> Result<Prediction, PredictError> {
    predict_prepared_seeded(module, params, workload, options, prepared, deadline, None)
}

/// [`predict_prepared_limited`] with an optional cross-cell ILP
/// warm-start seed (the `mapping.ilp_seed` of a structurally similar
/// prediction — see [`crate::sweep`]'s star topology). The seed only
/// accelerates the mapping solve; every other stage is untouched, and a
/// rejected seed degrades to exactly the unseeded solve.
#[allow(clippy::too_many_arguments)]
pub(crate) fn predict_prepared_seeded(
    module: &CirModule,
    params: &NicParameters,
    workload: &WorkloadProfile,
    options: &PredictOptions,
    prepared: &Prepared,
    deadline: &RunDeadline,
    seed: Option<&IlpSeed>,
) -> Result<Prediction, PredictError> {
    if options.inject_panic {
        panic!("injected panic (test hook)");
    }
    let mut graph = extract(module);
    let Prepared { classes, states, state_hit, fc_hit } = prepared;
    let (fc_hit, classes) = (*fc_hit, classes.as_slice());

    // Workload-average node weights for the mapping objective.
    let mut avg_weights = vec![0.0f64; graph.nodes.len()];
    for class in classes {
        for (i, node) in graph.nodes.iter().enumerate() {
            avg_weights[i] += class.share * node_weight(node, &class.block_weights);
        }
    }
    for (node, w) in graph.nodes.iter_mut().zip(&avg_weights) {
        node.weight = *w;
    }

    let input = MapInput {
        graph: &graph,
        states: states.clone(),
        params,
        avg_payload: workload.avg_payload,
        rate_pps: workload.rate_pps,
        state_hit: state_hit.clone(),
        fc_hit,
        dpi_hit: DPI_HIT_DEFAULT,
        forbid_accels: options.software_only,
        pinned: resolve_pins(options, module, params)?,
    };
    let mapping = solve_mapping_seeded(&input, &options.budget, &options.solver, deadline, seed)
        .map_err(|e| match e {
            // A cell stopped by the shared cancel token was abandoned,
            // not genuinely out of time — report it as such.
            MapError::TimedOut if deadline.cancelled() => PredictError::Cancelled,
            other => PredictError::from(other),
        })?;

    // Shared-resource demand per packet (class-averaged) for queueing and
    // throughput.
    let avg_ctx = CostCtx {
        params,
        payload: workload.avg_payload,
        state_hit,
        fc_hit,
        dpi_hit: DPI_HIT_DEFAULT,
    };
    let mut accel_demand: HashMap<AccelKind, f64> = HashMap::new();
    let mut npu_demand = 0.0f64;
    for (i, node) in graph.nodes.iter().enumerate() {
        let unit = mapping.node_unit[i];
        let mut per_exec = node_compute_cost(node, unit, &avg_ctx);
        for state in node.touched_states() {
            let s = state.0 as usize;
            per_exec += state_access_cost(node, s, mapping.state_mem[s], unit, states, &avg_ctx);
        }
        match unit {
            UnitChoice::Accel(kind) => {
                *accel_demand.entry(kind).or_insert(0.0) += avg_weights[i] * per_exec;
            }
            UnitChoice::Npu | UnitChoice::Stage(_) => {
                npu_demand += avg_weights[i] * per_exec;
            }
        }
    }
    let freq_hz = params.freq_ghz * 1e9;
    let accel_rho: HashMap<AccelKind, f64> = accel_demand
        .iter()
        .map(|(&k, &d)| (k, workload.rate_pps * d / freq_hz))
        .collect();
    let pool_servers = params.total_threads.max(1);
    let pool_rho = workload.rate_pps * npu_demand / (freq_hz * pool_servers as f64);

    // Per-class pricing.
    let mut per_class = Vec::with_capacity(classes.len());
    let mut avg_latency = 0.0f64;
    let mut avg_energy_cycles = 0.0f64;
    for class in classes {
        let latency = price_class(
            class, &graph, &mapping, states, params, state_hit, fc_hit, &accel_rho, pool_rho,
            pool_servers,
        );
        avg_latency += class.share * latency;
        avg_energy_cycles += class.share * (latency - params.hub_overhead).max(0.0);
        per_class.push(ClassPrediction {
            name: class.name.clone(),
            share: class.share,
            payload: class.payload,
            latency_cycles: latency,
        });
    }

    // Idealized throughput: the tightest resource bound.
    let mut throughput = f64::INFINITY;
    let mut bottleneck = "offered-load".to_string();
    if npu_demand > 0.0 {
        let cap = freq_hz * pool_servers as f64 / npu_demand;
        if cap < throughput {
            throughput = cap;
            bottleneck = "npu-threads".into();
        }
    }
    for (kind, demand) in &accel_demand {
        if *demand > 0.0 {
            let cap = freq_hz / demand;
            if cap < throughput {
                throughput = cap;
                bottleneck = format!("{kind}-accelerator");
            }
        }
    }

    Ok(Prediction {
        avg_latency_cycles: avg_latency,
        avg_latency_ns: avg_latency / params.freq_ghz,
        per_class,
        mapping,
        throughput_pps: throughput,
        energy_nj_per_packet: avg_energy_cycles * params.nj_per_cycle,
        bottleneck,
        graph,
    })
}

/// Price one class against a fixed mapping.
#[allow(clippy::too_many_arguments)]
pub(crate) fn price_class(
    class: &PacketClass,
    graph: &DataflowGraph,
    mapping: &Mapping,
    states: &[StateSpec],
    params: &NicParameters,
    state_hit: &[Vec<f64>],
    fc_hit: f64,
    accel_rho: &HashMap<AccelKind, f64>,
    pool_rho: f64,
    pool_servers: usize,
) -> f64 {
    let ctx = CostCtx {
        params,
        payload: class.payload,
        state_hit,
        fc_hit,
        dpi_hit: DPI_HIT_DEFAULT,
    };
    let spill_bytes = (class.payload + 40.0 - RESIDENCY_BYTES).max(0.0);
    let spill_frac = if class.payload > 0.0 { spill_bytes / class.payload } else { 0.0 };
    let spill_extra = params.stream_per_byte_spilled - params.stream_per_byte_resident;
    // The first spilled byte opens a transaction against the slowest
    // (external) region.
    let spill_base = params
        .mems
        .iter()
        .map(|m| m.latency)
        .fold(0.0, f64::max);

    let mut latency = params.hub_overhead;
    let mut npu_cycles = 0.0f64;
    for (i, node) in graph.nodes.iter().enumerate() {
        let weight = node_weight(node, &class.block_weights);
        if weight == 0.0 {
            continue;
        }
        let unit = mapping.node_unit[i];
        let mut per_exec = node_compute_cost(node, unit, &ctx);
        for state in node.touched_states() {
            let s = state.0 as usize;
            per_exec += state_access_cost(node, s, mapping.state_mem[s], unit, states, &ctx);
        }
        // Payload-spill correction for software streaming work: spilled
        // bytes stream at the slower rate, plus one spill-region
        // transaction per payload-sized operation.
        let frame_spills = class.payload + 40.0 > RESIDENCY_BYTES;
        if matches!(unit, UnitChoice::Npu | UnitChoice::Stage(_)) && frame_spills {
            let payload_ops: f64 = node
                .vcalls
                .iter()
                .filter(|(c, _)| c.is_payload_sized())
                .map(|(_, n)| *n as f64)
                .sum();
            let streamed: f64 =
                node.ops.payload_bytes as f64 + payload_ops * class.payload;
            per_exec += streamed * spill_frac * spill_extra;
            per_exec += payload_ops * spill_base;
        }
        let mut node_latency = weight * per_exec;
        // Queueing at shared resources.
        match unit {
            UnitChoice::Accel(kind) => {
                let rho = accel_rho.get(&kind).copied().unwrap_or(0.0);
                node_latency += weight * accel_wait(per_exec, rho);
            }
            UnitChoice::Npu | UnitChoice::Stage(_) => {
                npu_cycles += weight * per_exec;
            }
        }
        latency += node_latency;
    }
    latency + pool_wait(npu_cycles, pool_rho, pool_servers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clara_cir::lower;
    use clara_lang::frontend;
    use clara_lnic::profiles;
    use clara_microbench::extract_parameters;
    use std::sync::OnceLock;

    fn params() -> &'static NicParameters {
        static P: OnceLock<NicParameters> = OnceLock::new();
        P.get_or_init(|| extract_parameters(&profiles::netronome_agilio_cx40()))
    }

    fn module(src: &str) -> CirModule {
        lower(&frontend(src).unwrap()).unwrap()
    }

    fn wl() -> WorkloadProfile {
        WorkloadProfile::paper_default()
    }

    const NAT_SRC: &str = r#"nf nat {
        state flow_table: map<u64, u64>[65536];
        fn handle(pkt: packet) -> action {
            dpdk.parse_headers(pkt);
            let key: u64 = hash(pkt.src_ip, pkt.src_port);
            let entry: u64 = flow_table.lookup(key);
            if (entry == 0) {
                entry = key & 0xffff;
                flow_table.insert(key, entry);
            }
            pkt.set_src_ip(entry);
            let ck: u16 = checksum(pkt);
            return forward;
        } }"#;

    #[test]
    fn nat_prediction_is_positive_and_structured() {
        let m = module(NAT_SRC);
        let p = predict(&m, params(), &wl()).unwrap();
        assert!(p.avg_latency_cycles > params().hub_overhead);
        assert!(p.avg_latency_ns > 0.0);
        assert_eq!(p.per_class.len(), 1); // all established TCP
        assert!(p.throughput_pps.is_finite());
        assert!(p.energy_nj_per_packet > 0.0);
    }

    #[test]
    fn syn_packets_predicted_slower() {
        // The paper's example output: "TCP SYN packets experience higher
        // latency, but the following packets will hit".
        let m = module(NAT_SRC);
        let workload = WorkloadProfile { syn_share: 0.1, ..wl() };
        let p = predict(&m, params(), &workload).unwrap();
        let syn = p.per_class.iter().find(|c| c.name == "tcp-syn").unwrap();
        let est = p.per_class.iter().find(|c| c.name == "tcp").unwrap();
        // SYN takes the insert path: one extra table write. But SYNs also
        // carry no payload (cheaper checksum) — compare per-node work via
        // graph weights instead of raw latency.
        assert!(syn.latency_cycles > 0.0 && est.latency_cycles > 0.0);
        assert!((p.avg_latency_cycles
            - (syn.share * syn.latency_cycles + est.share * est.latency_cycles))
            .abs()
            < 1e-6);
    }

    #[test]
    fn latency_grows_with_payload() {
        let m = module(NAT_SRC); // checksum is payload-sized
        let small = predict(&m, params(), &WorkloadProfile { avg_payload: 200.0, ..wl() }).unwrap();
        let large =
            predict(&m, params(), &WorkloadProfile { avg_payload: 1400.0, ..wl() }).unwrap();
        assert!(
            large.avg_latency_cycles > small.avg_latency_cycles,
            "small {} large {}",
            small.avg_latency_cycles,
            large.avg_latency_cycles
        );
    }

    #[test]
    fn queueing_term_appears_at_high_rate() {
        let src = r#"nf scan {
            fn handle(pkt: packet) -> action {
                aes_encrypt(pkt);
                return forward;
            } }"#;
        let m = module(src);
        let low = predict(&m, params(), &WorkloadProfile { rate_pps: 50_000.0, avg_payload: 1400.0, max_payload: 1400, ..wl() })
            .unwrap();
        let high = predict(&m, params(), &WorkloadProfile { rate_pps: 450_000.0, avg_payload: 1400.0, max_payload: 1400, ..wl() })
            .unwrap();
        assert!(
            high.avg_latency_cycles > low.avg_latency_cycles * 1.1,
            "low {} high {}",
            low.avg_latency_cycles,
            high.avg_latency_cycles
        );
        assert!(high.bottleneck.contains("crypto"), "{}", high.bottleneck);
    }

    #[test]
    fn flow_count_changes_prediction_via_caches() {
        let src = r#"nf fw {
            state conns: map<u64, u64>[1000000];
            fn handle(pkt: packet) -> action {
                let v: u64 = conns.lookup(hash(pkt.src_ip, pkt.dst_ip));
                if (v == 0) { conns.insert(hash(pkt.src_ip, pkt.dst_ip), 1); }
                return forward;
            } }"#;
        let m = module(src);
        let few = predict(&m, params(), &WorkloadProfile { flows: 1_000, ..wl() }).unwrap();
        let many = predict(&m, params(), &WorkloadProfile { flows: 500_000, ..wl() }).unwrap();
        assert!(
            many.avg_latency_cycles > few.avg_latency_cycles,
            "few {} many {}",
            few.avg_latency_cycles,
            many.avg_latency_cycles
        );
    }

    #[test]
    fn spill_correction_kicks_in_past_residency() {
        let src = r#"nf dpi {
            fn handle(pkt: packet) -> action {
                let hits: u64 = payload_scan(pkt, 3);
                if (hits > 0) { return drop; }
                return forward;
            } }"#;
        let m = module(src);
        let at_1000 =
            predict(&m, params(), &WorkloadProfile { avg_payload: 1000.0, ..wl() }).unwrap();
        let at_1400 =
            predict(&m, params(), &WorkloadProfile { avg_payload: 1400.0, ..wl() }).unwrap();
        // Slope beyond residency exceeds proportional growth.
        let proportional = at_1000.avg_latency_cycles * 1.4;
        assert!(
            at_1400.avg_latency_cycles > proportional * 0.98,
            "1000B {} 1400B {} proportional {}",
            at_1000.avg_latency_cycles,
            at_1400.avg_latency_cycles,
            proportional
        );
    }

    #[test]
    fn throughput_bottleneck_identified() {
        let m = module(NAT_SRC);
        let p = predict(&m, params(), &wl()).unwrap();
        assert!(
            p.bottleneck == "npu-threads" || p.bottleneck.contains("accelerator"),
            "{}",
            p.bottleneck
        );
        assert!(p.throughput_pps > wl().rate_pps, "should sustain 60kpps");
    }
}
