//! Packet-class enumeration and per-class path profiling.
//!
//! "Different network packets may exercise different parts of the NF"
//! (§3.5). We split the workload into classes, build representative
//! packets for each, and execute them through the CIR interpreter to
//! learn each class's path — per-block execution counts that become
//! dataflow-node weights.

use clara_cir::{execute, CirModule, HashState, PacketInfo, StateId};
use clara_lang::StateKind;
use clara_workload::WorkloadProfile;

/// Interpreter fuel per packet (bounds runaway loops).
const FUEL: u64 = 50_000_000;

/// Representative packets per class.
const REPS: usize = 32;

/// One packet class of the workload.
#[derive(Debug, Clone)]
pub struct PacketClass {
    /// Human-readable name (`"tcp-syn"`, `"tcp"`, `"udp"`).
    pub name: String,
    /// Fraction of packets in this class.
    pub share: f64,
    /// Payload size for this class, bytes.
    pub payload: f64,
    /// Mean executions of each basic block per packet of this class.
    pub block_weights: Vec<f64>,
    /// Fraction of this class's packets the NF forwards.
    pub forward_share: f64,
}

/// Decompose `workload` into classes and profile each through the
/// interpreter.
///
/// State is seeded realistically: LPM tables get a default route plus a
/// rule spread, and for non-SYN classes each representative packet is run
/// twice with profile taken from the second run (steady state: the flow's
/// entries exist). SYN packets profile the first (setup) run.
pub fn enumerate_classes(module: &CirModule, workload: &WorkloadProfile) -> Vec<PacketClass> {
    let syn_share = workload.syn_share.clamp(0.0, 1.0) * workload.tcp_share;
    let tcp_share = (workload.tcp_share - syn_share).max(0.0);
    let udp_share = (1.0 - workload.tcp_share).max(0.0);

    let mut classes = Vec::new();
    if syn_share > 0.0 {
        classes.push(profile_class(module, workload, "tcp-syn", syn_share, 0.0, true));
    }
    if tcp_share > 0.0 {
        classes.push(profile_class(
            module,
            workload,
            "tcp",
            tcp_share,
            workload.avg_payload,
            false,
        ));
    }
    if udp_share > 0.0 {
        classes.push(profile_class(
            module,
            workload,
            "udp",
            udp_share,
            workload.avg_payload,
            false,
        ));
    }
    // Renormalize shares in case of clamping.
    let total: f64 = classes.iter().map(|c| c.share).sum();
    if total > 0.0 {
        for c in &mut classes {
            c.share /= total;
        }
    }
    classes
}

fn profile_class(
    module: &CirModule,
    workload: &WorkloadProfile,
    name: &str,
    share: f64,
    payload: f64,
    is_syn: bool,
) -> PacketClass {
    let n_blocks = module.handle.blocks.len();
    let mut totals = vec![0.0f64; n_blocks];
    let mut forwards = 0usize;
    let mut state = HashState::new();
    seed_state(module, &mut state);

    let udp = name == "udp";
    for i in 0..REPS {
        let pkt = representative_packet(i, payload as u16, udp, is_syn, workload);
        if is_syn {
            // Setup path: fresh flow.
            let prof = execute(&module.handle, &pkt, &mut state, FUEL)
                .expect("profiling within fuel");
            add(&mut totals, &prof.block_counts);
            forwards += prof.forward as usize;
        } else {
            // Warm the flow, then profile the steady-state run.
            let _ = execute(&module.handle, &pkt, &mut state, FUEL);
            let prof = execute(&module.handle, &pkt, &mut state, FUEL)
                .expect("profiling within fuel");
            add(&mut totals, &prof.block_counts);
            forwards += prof.forward as usize;
        }
    }
    for t in &mut totals {
        *t /= REPS as f64;
    }
    PacketClass {
        name: name.into(),
        share,
        payload,
        block_weights: totals,
        forward_share: forwards as f64 / REPS as f64,
    }
}

fn add(acc: &mut [f64], counts: &[u64]) {
    for (a, &c) in acc.iter_mut().zip(counts) {
        *a += c as f64;
    }
}

fn representative_packet(
    i: usize,
    payload: u16,
    udp: bool,
    syn: bool,
    workload: &WorkloadProfile,
) -> PacketInfo {
    // Spread representatives across the workload's flow space.
    let flow = (i * workload.flows.max(1) / REPS.max(1)) as u32;
    let src_ip = 0x0a00_0000 | flow;
    let dst_ip = 0xc0a8_0001;
    let src_port = 1024 + (flow % 60_000) as u16;
    let dst_port = if udp { 53 } else { 443 };
    let mut pkt = if udp {
        PacketInfo::udp(src_ip, dst_ip, src_port, dst_port, payload)
    } else {
        PacketInfo::tcp(src_ip, dst_ip, src_port, dst_port, payload)
    };
    if syn {
        pkt = pkt.with_syn();
    }
    pkt.payload_seed = (flow & 0xff) as u8;
    pkt
}

/// Seed NF state so profiling exercises realistic paths: LPM tables get a
/// default route plus a spread of more-specific rules.
pub fn seed_state(module: &CirModule, state: &mut HashState) {
    for (i, s) in module.states.iter().enumerate() {
        if s.kind == StateKind::Lpm {
            let sid = StateId(i as u32);
            state.add_lpm_rule(sid, 0, 0, 1); // default route
            let rules = s.capacity.min(256);
            for r in 0..rules {
                state.add_lpm_rule(sid, 0x0a00_0000 | ((r as u32) << 12), 24, r + 2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clara_cir::lower;
    use clara_lang::frontend;

    fn module(src: &str) -> CirModule {
        lower(&frontend(src).unwrap()).unwrap()
    }

    fn wl(tcp: f64, syn: f64, payload: f64) -> WorkloadProfile {
        WorkloadProfile {
            flows: 1000,
            tcp_share: tcp,
            syn_share: syn,
            avg_payload: payload,
            max_payload: payload as usize,
            rate_pps: 60_000.0,
            zipf_alpha: 0.0,
        }
    }

    #[test]
    fn class_shares_sum_to_one() {
        let m = module(
            "nf t { fn handle(pkt: packet) -> action { return forward; } }",
        );
        let classes = enumerate_classes(&m, &wl(0.8, 0.1, 300.0));
        assert_eq!(classes.len(), 3);
        let total: f64 = classes.iter().map(|c| c.share).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn all_tcp_no_syn_yields_single_class() {
        let m = module(
            "nf t { fn handle(pkt: packet) -> action { return forward; } }",
        );
        let classes = enumerate_classes(&m, &wl(1.0, 0.0, 300.0));
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].name, "tcp");
    }

    #[test]
    fn classes_take_different_paths() {
        // UDP packets take the cheap branch; TCP pays a checksum.
        let m = module(
            "nf t { fn handle(pkt: packet) -> action {
                if (pkt.is_tcp) {
                    let c: u16 = checksum(pkt);
                }
                return forward; } }",
        );
        let classes = enumerate_classes(&m, &wl(0.5, 0.0, 300.0));
        let tcp = classes.iter().find(|c| c.name == "tcp").unwrap();
        let udp = classes.iter().find(|c| c.name == "udp").unwrap();
        // The block holding the checksum vcall runs for TCP only.
        let ck_block = m
            .handle
            .vcalls()
            .find(|(_, c)| matches!(c, clara_cir::VCall::ChecksumFull))
            .map(|(b, _)| b.0 as usize)
            .unwrap();
        assert!((tcp.block_weights[ck_block] - 1.0).abs() < 1e-9);
        assert_eq!(udp.block_weights[ck_block], 0.0);
    }

    #[test]
    fn syn_class_takes_setup_path() {
        // First packet of a flow inserts; established flows hit.
        let m = module(
            "nf t { state flows: map<u64, u64>[1024];
              fn handle(pkt: packet) -> action {
                let k: u64 = hash(pkt.src_ip, pkt.src_port);
                let v: u64 = flows.lookup(k);
                if (v == 0) { flows.insert(k, 1); }
                return forward; } }",
        );
        let classes = enumerate_classes(&m, &wl(1.0, 0.2, 300.0));
        let syn = classes.iter().find(|c| c.name == "tcp-syn").unwrap();
        let est = classes.iter().find(|c| c.name == "tcp").unwrap();
        // SYN executes the insert arm; established packets do not.
        let insert_block = m
            .handle
            .vcalls()
            .find(|(_, c)| matches!(c, clara_cir::VCall::TableWrite(_)))
            .map(|(b, _)| b.0 as usize)
            .unwrap();
        assert!(
            syn.block_weights[insert_block] > 0.9,
            "syn insert weight {}",
            syn.block_weights[insert_block]
        );
        assert_eq!(est.block_weights[insert_block], 0.0);
        assert_eq!(syn.payload, 0.0);
    }

    #[test]
    fn payload_loops_show_in_weights() {
        let m = module(
            "nf t { fn handle(pkt: packet) -> action {
                let i: u64 = 0;
                let acc: u64 = 0;
                while (i < pkt.payload_len) {
                    acc = acc + pkt.payload_byte(i);
                    i = i + 1;
                }
                return forward; } }",
        );
        let classes = enumerate_classes(&m, &wl(1.0, 0.0, 500.0));
        let max_weight = classes[0]
            .block_weights
            .iter()
            .fold(0.0f64, |a, &b| a.max(b));
        assert!((max_weight - 500.0).abs() <= 2.0, "loop weight {max_weight}");
    }

    #[test]
    fn lpm_seeding_allows_forwarding() {
        let m = module(
            "nf t { state routes: lpm[1000];
              fn handle(pkt: packet) -> action {
                let nh: u64 = routes.lookup(pkt.dst_ip);
                if (nh == 0) { return drop; }
                return forward; } }",
        );
        let classes = enumerate_classes(&m, &wl(1.0, 0.0, 300.0));
        assert!(classes[0].forward_share > 0.9, "{}", classes[0].forward_share);
    }
}
