//! Predicted-vs-simulated validation sweeps (the paper's Figure-3-style
//! accuracy evidence, grid-shaped).
//!
//! A validation run takes one NF twice — the *lowered* form the
//! predictor prices and the *ported* [`NicProgram`] the simulator
//! executes — and sweeps both over a workload grid. Each cell predicts
//! the mean per-packet latency, then measures it by simulating a
//! generated trace, and reports the relative error between the two: the
//! per-cell analogue of the paper's §4 accuracy tables.
//!
//! The fan-out mirrors [`crate::supervisor`]: a claim counter plus
//! write-once slots under `std::thread::scope`, one cell per claim, with
//! every cell panic-isolated so a bad (workload, program) pairing
//! degrades to that cell's failure instead of killing the run. Each
//! worker owns a single [`SimScratch`] reused across all the cells it
//! claims, and feeds the simulator from
//! [`WorkloadProfile::to_trace_stream`] — no trace is ever materialized,
//! and steady-state simulation allocates O(1) per cell. Healthy-cell
//! results are bit-identical between a sequential run (`threads: 1`) and
//! any parallel schedule: cells are pure and scratch reuse never changes
//! simulator output.

use crate::predictor::{predict_prepared_seeded, prepare, PredictOptions};
use crate::supervisor::{CellOutcome, RunReport};
use clara_cir::CirModule;
use clara_lnic::Lnic;
use clara_map::{IlpSeed, RunDeadline};
use clara_microbench::NicParameters;
use clara_nicsim::{
    simulate_streamed, simulate_streamed_instrumented, CostCache, FaultPlan, NicProgram, SimConfig,
    SimInstruments, SimScratch, Watchdog,
};
use clara_telemetry::{SimStats, SolveStats};
use clara_workload::WorkloadProfile;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Policy knobs for one validation sweep.
#[derive(Debug, Clone)]
pub struct ValidationConfig {
    /// Worker threads; `0` = available parallelism.
    pub threads: usize,
    /// Packets simulated per cell (predictions are closed-form; the
    /// simulated side needs enough packets to reach steady state).
    pub packets: usize,
    /// Trace-generation seed, shared by every cell.
    pub seed: u64,
    /// Simulator configuration; [`SimConfig::exact`] forces the
    /// unmemoized seed path for fidelity audits.
    pub sim: SimConfig,
    /// Prediction options applied to every cell.
    pub options: PredictOptions,
    /// Watchdog for every cell's simulation. The default caps are far
    /// above legitimate programs; a server threads its per-request
    /// wall-clock deadline (and drain cancel token) through here so a
    /// slow simulation stops cooperatively instead of outliving its
    /// request.
    pub watchdog: Watchdog,
    /// Collect per-cell telemetry: simulator counters in each
    /// [`ValidationCell::sim_stats`] and a summary line on each
    /// [`crate::supervisor::CellReport`]. Off by default; instrumented cells are
    /// bit-identical to uninstrumented ones (telemetry never feeds back),
    /// so this only adds observation cost.
    pub telemetry: bool,
    /// Shared stage-cost cache attached to every worker's scratch.
    /// `None` (the default) makes the sweep create one internally, so
    /// cells still share costs with each other; pass a session-owned
    /// cache to also share across requests. Shared values are replayed
    /// bit-identically (they are keyed by the post-fault run
    /// fingerprint), so attaching a cache never changes results.
    pub cost_cache: Option<Arc<CostCache>>,
}

impl Default for ValidationConfig {
    fn default() -> Self {
        ValidationConfig {
            threads: 0,
            packets: 4_000,
            seed: 42,
            sim: SimConfig::default(),
            options: PredictOptions::default(),
            watchdog: Watchdog::new(),
            telemetry: false,
            cost_cache: None,
        }
    }
}

/// One healthy cell: a workload point with both numbers attached.
#[derive(Debug, Clone)]
pub struct ValidationCell {
    /// Human-readable cell label (`rate=… payload=… flows=…`).
    pub label: String,
    /// Offered rate of the cell's workload, packets per second.
    pub rate_pps: f64,
    /// Mean payload bytes of the cell's workload.
    pub avg_payload: f64,
    /// Concurrent flow count of the cell's workload.
    pub flows: usize,
    /// Clara's predicted mean per-packet latency, cycles.
    pub predicted_cycles: f64,
    /// Simulated steady-state mean latency (tail half of the trace, the
    /// same estimator the paper's figures use), cycles.
    pub actual_cycles: f64,
    /// Mapping quality tag of the prediction (`optimal`, `incumbent`, …).
    pub quality: String,
    /// Packets the simulator completed (vs. dropped) in this cell.
    pub completed: usize,
    /// Solver telemetry of the cell's prediction (always filled: the
    /// mapping carries it whether or not telemetry collection is on).
    pub solve: SolveStats,
    /// Simulator counters, when [`ValidationConfig::telemetry`] was on.
    pub sim_stats: Option<SimStats>,
}

impl ValidationCell {
    /// Relative prediction error of this cell.
    pub fn rel_error(&self) -> f64 {
        (self.predicted_cycles - self.actual_cycles).abs() / self.actual_cycles.max(1.0)
    }
}

/// What one cell of a validation sweep produced.
// `Ok` is by far the common variant in a healthy sweep, so the cell
// stays inline rather than boxed — the per-element size is paid either
// way inside `Vec<ValidationResult>`, and boxing would add an
// allocation per healthy cell.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum ValidationResult {
    /// Both sides ran; numbers attached.
    Ok(ValidationCell),
    /// Prediction or simulation failed (message says which and why).
    Failed(String),
}

/// The outcome of [`run_validation_sweep`].
#[derive(Debug)]
pub struct ValidationSweep {
    /// Per-cell results, in grid order.
    pub cells: Vec<ValidationResult>,
    /// Per-cell outcomes folded into the supervisor's run report, so
    /// callers classify exit codes exactly as they do for plain sweeps.
    pub report: RunReport,
}

/// Aggregate accuracy summary of a validation sweep: cell counts by
/// outcome plus the distribution of per-cell relative errors.
#[derive(Debug, Clone, Default)]
pub struct ErrorSummary {
    /// Cells where both sides ran.
    pub ok_cells: usize,
    /// Cells that failed (predict, simulate, or panic).
    pub failed_cells: usize,
    /// Mean relative error over healthy cells; `None` when none.
    pub mean: Option<f64>,
    /// Median relative error; `None` when no cell succeeded.
    pub p50: Option<f64>,
    /// 95th-percentile relative error; `None` when no cell succeeded.
    pub p95: Option<f64>,
    /// Worst relative error; `None` when no cell succeeded.
    pub max: Option<f64>,
}

impl ValidationSweep {
    /// Mean absolute relative error over the healthy cells (the §4
    /// aggregate accuracy metric). `None` when no cell succeeded.
    pub fn mean_error(&self) -> Option<f64> {
        self.error_summary().mean
    }

    /// The aggregate accuracy block: ok/failed counts and the
    /// p50/p95/max relative-error distribution over healthy cells.
    /// Percentiles use the nearest-rank method over the sorted errors.
    pub fn error_summary(&self) -> ErrorSummary {
        let mut errs: Vec<f64> = self
            .cells
            .iter()
            .filter_map(|c| match c {
                ValidationResult::Ok(cell) => Some(cell.rel_error()),
                ValidationResult::Failed(_) => None,
            })
            .collect();
        errs.sort_by(|a, b| a.total_cmp(b));
        let failed_cells = self.cells.len() - errs.len();
        if errs.is_empty() {
            return ErrorSummary { ok_cells: 0, failed_cells, ..ErrorSummary::default() };
        }
        let pct = |q: f64| {
            let idx = ((errs.len() as f64 * q).ceil() as usize).clamp(1, errs.len()) - 1;
            errs[idx]
        };
        ErrorSummary {
            ok_cells: errs.len(),
            failed_cells,
            mean: Some(errs.iter().sum::<f64>() / errs.len() as f64),
            p50: Some(pct(0.50)),
            p95: Some(pct(0.95)),
            max: errs.last().copied(),
        }
    }

    /// Fold per-cell telemetry into one run-level view: summed solver
    /// stats over healthy cells, and merged simulator counters when the
    /// sweep ran with [`ValidationConfig::telemetry`]. `(None, None)`
    /// when no cell succeeded.
    pub fn merged_stats(&self) -> (Option<SolveStats>, Option<SimStats>) {
        let mut solve: Option<SolveStats> = None;
        let mut sim: Option<SimStats> = None;
        for cell in &self.cells {
            let ValidationResult::Ok(c) = cell else { continue };
            match &mut solve {
                Some(s) => s.merge(&c.solve),
                None => solve = Some(c.solve.clone()),
            }
            if let Some(cs) = &c.sim_stats {
                match &mut sim {
                    Some(s) => s.merge(cs),
                    None => sim = Some(cs.clone()),
                }
            }
        }
        (solve, sim)
    }
}

/// The default validation grid: `per_axis`³ cells over offered rate ×
/// payload size × flow count, the same axes (and values) as the
/// pipeline bench's sweep so the two artifacts describe the same space.
pub fn validation_grid(per_axis: usize) -> Vec<WorkloadProfile> {
    let rates = [20_000.0, 60_000.0, 200_000.0, 600_000.0];
    let payloads = [100.0, 300.0, 700.0, 1400.0];
    let flows = [100usize, 1_000, 10_000, 100_000];
    let n = per_axis.clamp(1, 4);
    let mut grid = Vec::with_capacity(n * n * n);
    for &rate in &rates[..n] {
        for &payload in &payloads[..n] {
            for &f in &flows[..n] {
                grid.push(WorkloadProfile {
                    rate_pps: rate,
                    avg_payload: payload,
                    max_payload: payload as usize,
                    flows: f,
                    ..WorkloadProfile::paper_default()
                });
            }
        }
    }
    grid
}

/// Label a grid cell the way sweep scenarios are labelled.
fn cell_label(wl: &WorkloadProfile) -> String {
    format!("rate={} payload={} flows={}", wl.rate_pps, wl.avg_payload, wl.flows)
}

/// Predict and simulate every cell of `grid`, in parallel, returning
/// per-cell prediction error.
///
/// `module` is the lowered NF the predictor prices; `program` is the
/// ported form the simulator executes on `nic`. Both sides of a cell see
/// the same [`WorkloadProfile`] — the predictor through its closed-form
/// pipeline, the simulator through a streamed seeded trace.
pub fn run_validation_sweep(
    module: &CirModule,
    params: &NicParameters,
    nic: &Lnic,
    program: &NicProgram,
    grid: &[WorkloadProfile],
    config: &ValidationConfig,
) -> ValidationSweep {
    let threads = match config.threads {
        0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        n => n,
    };
    let faults = FaultPlan::none();
    let watchdog = config.watchdog.clone();
    // One shared cost cache per sweep (donated like the ILP warm-start
    // seed below): the first cell to cost a pure (stage, unit[, len])
    // signature publishes it and every later cell — on any worker —
    // replays it instead of recomputing.
    let cost_cache: Arc<CostCache> =
        config.cost_cache.clone().unwrap_or_else(|| Arc::new(CostCache::new()));

    // Star-topology cross-cell warm start, mirroring the prediction
    // sweep: the first grid cell is the seed donor for every other
    // cell's mapping solve. The donor's seed is computed on first demand
    // (a pure function of `grid[0]`), so seeding decisions — and
    // therefore results — are identical for every thread schedule.
    let donor_seed: OnceLock<Option<IlpSeed>> = OnceLock::new();
    let seed_for = |i: usize| -> Option<IlpSeed> {
        if i == 0 {
            return None;
        }
        donor_seed
            .get_or_init(|| {
                catch_unwind(AssertUnwindSafe(|| {
                    let wl = &grid[0];
                    let prepared = prepare(module, params, wl);
                    let deadline = RunDeadline::within_ms(config.options.deadline_ms);
                    predict_prepared_seeded(
                        module, params, wl, &config.options, &prepared, &deadline, None,
                    )
                    .ok()
                    .and_then(|p| p.mapping.ilp_seed)
                }))
                .unwrap_or(None)
            })
            .clone()
    };

    let run_one = |i: usize, scratch: &mut SimScratch| -> ValidationResult {
        let wl = &grid[i];
        // AssertUnwindSafe: `run_sim` resets every scratch arena before
        // use, so a panic mid-cell cannot leak torn state into the
        // worker's next cell.
        catch_unwind(AssertUnwindSafe(|| {
            let seed = seed_for(i);
            let prepared = prepare(module, params, wl);
            let deadline = RunDeadline::within_ms(config.options.deadline_ms);
            let p = match predict_prepared_seeded(
                module, params, wl, &config.options, &prepared, &deadline, seed.as_ref(),
            ) {
                Ok(p) => p,
                Err(e) => return ValidationResult::Failed(format!("predict: {e}")),
            };
            let stream = wl.to_trace_stream(config.packets, config.seed);
            let (sim, sim_stats) = if config.telemetry {
                let mut instr = SimInstruments::new();
                match simulate_streamed_instrumented(
                    nic, program, stream, &faults, &watchdog, &config.sim, scratch, &mut instr,
                ) {
                    Ok(r) => (r, Some(instr.stats)),
                    Err(e) => return ValidationResult::Failed(format!("simulate: {e}")),
                }
            } else {
                match simulate_streamed(
                    nic, program, stream, &faults, &watchdog, &config.sim, scratch,
                ) {
                    Ok(r) => (r, None),
                    Err(e) => return ValidationResult::Failed(format!("simulate: {e}")),
                }
            };
            // Steady state: discard the cold-start half, as the paper's
            // 1M-packet hardware averages do implicitly.
            let lat = scratch.latencies();
            let tail = &lat[lat.len() / 2..];
            let actual = tail.iter().sum::<u64>() as f64 / tail.len().max(1) as f64;
            ValidationResult::Ok(ValidationCell {
                label: cell_label(wl),
                rate_pps: wl.rate_pps,
                avg_payload: wl.avg_payload,
                flows: wl.flows,
                predicted_cycles: p.avg_latency_cycles,
                actual_cycles: actual,
                quality: p.mapping.quality.to_string(),
                completed: sim.completed,
                solve: p.mapping.stats.clone(),
                sim_stats,
            })
        }))
        .unwrap_or_else(|payload| {
            let payload = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            ValidationResult::Failed(format!("panicked: {payload}"))
        })
    };

    // Claim counter + write-once slots, exactly the supervised sweep's
    // scheme; each worker reuses one scratch across all its cells.
    let next = AtomicUsize::new(0);
    let slots: Vec<OnceLock<ValidationResult>> = (0..grid.len()).map(|_| OnceLock::new()).collect();
    if threads <= 1 || grid.len() <= 1 {
        let mut scratch = SimScratch::new();
        scratch.attach_cost_cache(Arc::clone(&cost_cache));
        for (i, slot) in slots.iter().enumerate() {
            let _ = slot.set(run_one(i, &mut scratch));
        }
    } else {
        std::thread::scope(|s| {
            for _ in 0..threads.min(grid.len()) {
                s.spawn(|| {
                    let mut scratch = SimScratch::new();
                    scratch.attach_cost_cache(Arc::clone(&cost_cache));
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= grid.len() {
                            break;
                        }
                        let _ = slots[i].set(run_one(i, &mut scratch));
                    }
                });
            }
        });
    }
    let cells: Vec<ValidationResult> = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or(ValidationResult::Failed("lost: worker died without reporting".into()))
        })
        .collect();

    let mut report = RunReport::default();
    for (wl, cell) in grid.iter().zip(&cells) {
        let (outcome, telemetry) = match cell {
            ValidationResult::Ok(c) => (
                CellOutcome::Ok { quality: c.quality.clone(), retried: false },
                Some(match &c.sim_stats {
                    Some(s) => format!("{} | {}", c.solve.summary(), s.summary()),
                    None => c.solve.summary(),
                }),
            ),
            ValidationResult::Failed(e) => {
                (CellOutcome::Failed { error: e.clone(), retried: false }, None)
            }
        };
        report.record_with_telemetry(&cell_label(wl), outcome, telemetry);
    }
    ValidationSweep { cells, report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervisor::RunClass;
    use clara_lang::frontend;
    use clara_lnic::profiles;
    use clara_microbench::extract_parameters;
    use clara_nicsim::{MicroOp, Stage, StageUnit, TableCfg};

    fn nat_module() -> CirModule {
        let src = r#"nf nat {
            state flow_table: map<u64, u64>[65536];
            fn handle(pkt: packet) -> action {
                dpdk.parse_headers(pkt);
                let entry: u64 = flow_table.lookup(hash(pkt.src_ip, pkt.src_port));
                let ck: u16 = checksum(pkt);
                return forward;
            } }"#;
        clara_cir::lower(&frontend(src).unwrap()).unwrap()
    }

    fn nat_program() -> NicProgram {
        NicProgram {
            name: "nat".into(),
            tables: vec![TableCfg {
                name: "flow_table".into(),
                mem: "emem".into(),
                entry_bytes: 16,
                entries: 65_536,
                use_flow_cache: true,
            }],
            stages: vec![Stage {
                name: "rewrite".into(),
                unit: StageUnit::Npu,
                ops: vec![
                    MicroOp::ParseHeader,
                    MicroOp::Hash { count: 1 },
                    MicroOp::TableLookup { table: 0 },
                    MicroOp::MetadataMod { count: 3 },
                    MicroOp::ChecksumSw,
                ],
            }],
        }
    }

    fn small_config(threads: usize) -> ValidationConfig {
        ValidationConfig { threads, packets: 600, ..ValidationConfig::default() }
    }

    /// Like [`nat_program`] but split into per-op stages, so the parse
    /// stage classifies Fixed and the checksum stage PayloadPure — the
    /// shapes the shared cost cache actually interns. The single-stage
    /// variant is one Live stage and never touches the cache.
    fn staged_nat_program() -> NicProgram {
        NicProgram {
            name: "nat-staged".into(),
            tables: vec![TableCfg {
                name: "flow_table".into(),
                mem: "emem".into(),
                entry_bytes: 16,
                entries: 65_536,
                use_flow_cache: true,
            }],
            stages: vec![
                Stage {
                    name: "parse".into(),
                    unit: StageUnit::Npu,
                    ops: vec![MicroOp::ParseHeader, MicroOp::Hash { count: 1 }],
                },
                Stage {
                    name: "lookup".into(),
                    unit: StageUnit::Npu,
                    ops: vec![MicroOp::TableLookup { table: 0 }, MicroOp::MetadataMod { count: 3 }],
                },
                Stage {
                    name: "checksum".into(),
                    unit: StageUnit::Npu,
                    ops: vec![MicroOp::ChecksumSw],
                },
            ],
        }
    }

    #[test]
    fn shared_cost_cache_across_sweeps_is_bit_identical_and_reused() {
        let nic = profiles::netronome_agilio_cx40();
        let params = extract_parameters(&nic);
        let module = nat_module();
        let program = staged_nat_program();
        let grid = validation_grid(2);
        // Baseline: sweep-internal cache (the default path).
        let baseline =
            run_validation_sweep(&module, &params, &nic, &program, &grid, &small_config(1));
        // Caller-owned cache shared across two whole sweeps.
        let cache = Arc::new(CostCache::new());
        let shared_cfg =
            ValidationConfig { cost_cache: Some(Arc::clone(&cache)), ..small_config(1) };
        let first =
            run_validation_sweep(&module, &params, &nic, &program, &grid, &shared_cfg);
        let misses_after_first = cache.misses();
        assert!(misses_after_first > 0, "first sweep must publish pure stage costs");
        assert!(cache.views() >= 1, "at least one fingerprint view interned");
        let second =
            run_validation_sweep(&module, &params, &nic, &program, &grid, &shared_cfg);
        assert!(cache.hits() > 0, "second sweep must resolve from the shared cache");
        assert_eq!(
            cache.misses(),
            misses_after_first,
            "an identical sweep recomputes no pure signature"
        );
        for (a, b) in baseline.cells.iter().zip(first.cells.iter().zip(&second.cells)) {
            let (ValidationResult::Ok(a), (ValidationResult::Ok(b), ValidationResult::Ok(c))) =
                (a, b)
            else {
                panic!("expected all Ok")
            };
            assert_eq!(a.predicted_cycles.to_bits(), b.predicted_cycles.to_bits());
            assert_eq!(a.actual_cycles.to_bits(), b.actual_cycles.to_bits());
            assert_eq!(b.actual_cycles.to_bits(), c.actual_cycles.to_bits());
            assert_eq!(a.completed, b.completed);
            assert_eq!(b.completed, c.completed);
        }
    }

    #[test]
    fn healthy_sweep_is_all_ok_with_finite_errors() {
        let nic = profiles::netronome_agilio_cx40();
        let params = extract_parameters(&nic);
        let module = nat_module();
        let program = nat_program();
        let grid = validation_grid(2);
        assert_eq!(grid.len(), 8);
        let sweep =
            run_validation_sweep(&module, &params, &nic, &program, &grid, &small_config(1));
        assert_eq!(sweep.report.class(), RunClass::AllOk);
        for cell in &sweep.cells {
            let ValidationResult::Ok(c) = cell else { panic!("expected Ok, got {cell:?}") };
            assert!(c.predicted_cycles > 0.0);
            assert!(c.actual_cycles > 0.0);
            assert!(c.rel_error().is_finite());
            assert!(c.completed > 0);
        }
        assert!(sweep.mean_error().unwrap().is_finite());
    }

    #[test]
    fn parallel_fanout_is_bit_identical_to_sequential() {
        let nic = profiles::netronome_agilio_cx40();
        let params = extract_parameters(&nic);
        let module = nat_module();
        let program = nat_program();
        let grid = validation_grid(2);
        let seq =
            run_validation_sweep(&module, &params, &nic, &program, &grid, &small_config(1));
        let par =
            run_validation_sweep(&module, &params, &nic, &program, &grid, &small_config(4));
        for (a, b) in seq.cells.iter().zip(&par.cells) {
            let (ValidationResult::Ok(a), ValidationResult::Ok(b)) = (a, b) else {
                panic!("expected both Ok, got {a:?} vs {b:?}")
            };
            assert_eq!(a.predicted_cycles.to_bits(), b.predicted_cycles.to_bits());
            assert_eq!(a.actual_cycles.to_bits(), b.actual_cycles.to_bits());
            assert_eq!(a.completed, b.completed);
            assert_eq!(a.label, b.label);
        }
    }

    #[test]
    fn exact_sim_config_matches_memoized_default() {
        let nic = profiles::netronome_agilio_cx40();
        let params = extract_parameters(&nic);
        let module = nat_module();
        let program = nat_program();
        let grid = validation_grid(1);
        let fast =
            run_validation_sweep(&module, &params, &nic, &program, &grid, &small_config(1));
        let exact_cfg =
            ValidationConfig { sim: SimConfig::exact(), ..small_config(1) };
        let exact = run_validation_sweep(&module, &params, &nic, &program, &grid, &exact_cfg);
        for (a, b) in fast.cells.iter().zip(&exact.cells) {
            let (ValidationResult::Ok(a), ValidationResult::Ok(b)) = (a, b) else {
                panic!("expected both Ok, got {a:?} vs {b:?}")
            };
            assert_eq!(a.actual_cycles.to_bits(), b.actual_cycles.to_bits());
        }
    }

    #[test]
    fn telemetry_sweep_is_bit_identical_and_carries_stats() {
        let nic = profiles::netronome_agilio_cx40();
        let params = extract_parameters(&nic);
        let module = nat_module();
        let program = nat_program();
        let grid = validation_grid(2);
        let plain =
            run_validation_sweep(&module, &params, &nic, &program, &grid, &small_config(1));
        let tele_cfg = ValidationConfig { telemetry: true, ..small_config(1) };
        let tele = run_validation_sweep(&module, &params, &nic, &program, &grid, &tele_cfg);
        for (a, b) in plain.cells.iter().zip(&tele.cells) {
            let (ValidationResult::Ok(a), ValidationResult::Ok(b)) = (a, b) else {
                panic!("expected both Ok, got {a:?} vs {b:?}")
            };
            // Telemetry must never perturb either side of a cell.
            assert_eq!(a.predicted_cycles.to_bits(), b.predicted_cycles.to_bits());
            assert_eq!(a.actual_cycles.to_bits(), b.actual_cycles.to_bits());
            assert_eq!(a.completed, b.completed);
            let st = b.sim_stats.as_ref().expect("telemetry run fills sim_stats");
            assert!(st.conserved(), "{st:?}");
            assert_eq!(st.completed as usize, b.completed);
            assert!(a.sim_stats.is_none());
        }
        let summary = tele.error_summary();
        assert_eq!((summary.ok_cells, summary.failed_cells), (8, 0));
        assert!(summary.p50.unwrap() <= summary.p95.unwrap());
        assert!(summary.p95.unwrap() <= summary.max.unwrap());
        assert_eq!(summary.mean, tele.mean_error());
        let (solve, sim) = tele.merged_stats();
        assert!(solve.unwrap().nodes_explored > 0);
        let sim = sim.unwrap();
        assert!(sim.conserved());
        assert_eq!(sim.injected, 8 * 600);
        // Per-cell telemetry summaries ride on the run report.
        assert!(tele
            .report
            .cells
            .iter()
            .all(|c| c.telemetry.as_deref().is_some_and(|t| t.contains("sim:"))));
    }

    #[test]
    fn bad_program_degrades_to_failed_cell_not_a_crash() {
        let nic = profiles::netronome_agilio_cx40();
        let params = extract_parameters(&nic);
        let module = nat_module();
        // A table in a region the Netronome profile does not have: the
        // simulator panics per cell; the sweep must contain it.
        let mut program = nat_program();
        program.tables[0].mem = "hbm".into();
        let grid = validation_grid(1);
        let sweep =
            run_validation_sweep(&module, &params, &nic, &program, &grid, &small_config(2));
        assert_eq!(sweep.report.class(), RunClass::AllFailed);
        for cell in &sweep.cells {
            assert!(matches!(cell, ValidationResult::Failed(_)), "got {cell:?}");
        }
        assert!(sweep.mean_error().is_none());
    }
}
