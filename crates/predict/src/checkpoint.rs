//! Sweep checkpoint files: completed-cell results keyed by scenario
//! hash, persisted as JSON so an interrupted sweep can resume without
//! re-solving finished cells.
//!
//! The format is deliberately tiny and hand-rolled (the workspace takes
//! no serde dependency): a versioned header and one flat JSON object per
//! cell, one per line. Writing is atomic (temp file + rename), and the
//! reader is a *salvaging* scanner — a checkpoint truncated mid-write by
//! a crash or Ctrl-C yields every complete cell it contains, and
//! unparseable garbage degrades to an empty checkpoint rather than an
//! error. Losing checkpoint state can only cost re-computation, never
//! correctness, so the reader prefers salvage over strictness.

use crate::predictor::Prediction;
use crate::sweep::SweepScenario;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// Format version written to (and required in spirit from) the header.
/// Unknown versions still parse — cells a future format renames simply
/// fail the per-cell field check and are dropped.
const VERSION: u32 = 1;

/// The checkpointed numbers of one completed cell: enough to print the
/// sweep table without re-solving, keyed by [`scenario_hash`].
#[derive(Debug, Clone, PartialEq)]
pub struct CellSummary {
    /// [`scenario_hash`] of the cell this summarizes.
    pub hash: u64,
    /// The cell's human-readable label (informational; the hash is the
    /// key).
    pub label: String,
    /// Expected per-packet latency in cycles.
    pub avg_latency_cycles: f64,
    /// Same in nanoseconds.
    pub avg_latency_ns: f64,
    /// Idealized sustainable throughput, packets per second.
    pub throughput_pps: f64,
    /// Estimated energy per packet, nanojoules.
    pub energy_nj_per_packet: f64,
    /// The resource limiting throughput.
    pub bottleneck: String,
    /// Mapping quality tag (display form of
    /// [`clara_map::MappingQuality`]).
    pub quality: String,
}

impl CellSummary {
    /// Summarize a fresh prediction for checkpointing.
    pub fn of(hash: u64, label: &str, p: &Prediction) -> Self {
        CellSummary {
            hash,
            label: label.to_string(),
            avg_latency_cycles: p.avg_latency_cycles,
            avg_latency_ns: p.avg_latency_ns,
            throughput_pps: p.throughput_pps,
            energy_nj_per_packet: p.energy_nj_per_packet,
            bottleneck: p.bottleneck.clone(),
            quality: p.mapping.quality.to_string(),
        }
    }
}

/// A set of completed cells keyed by scenario hash.
#[derive(Debug, Clone, Default)]
pub struct Checkpoint {
    cells: BTreeMap<u64, CellSummary>,
}

impl Checkpoint {
    /// An empty checkpoint.
    pub fn new() -> Self {
        Checkpoint::default()
    }

    /// Number of completed cells recorded.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether no cells are recorded.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Record a completed cell (replacing any previous entry for the
    /// same hash).
    pub fn insert(&mut self, cell: CellSummary) {
        self.cells.insert(cell.hash, cell);
    }

    /// Look up a completed cell by scenario hash.
    pub fn get(&self, hash: u64) -> Option<&CellSummary> {
        self.cells.get(&hash)
    }

    /// Load a checkpoint from `path`. A missing file is an *empty*
    /// checkpoint (first run of a `--resume` invocation); a truncated or
    /// corrupted file salvages every complete cell object it contains.
    ///
    /// Loading is byte-safe: a crash can clip the file at *any* byte,
    /// including the middle of a multi-byte UTF-8 sequence in a label
    /// (labels are caller-controlled free text). Reading bytes and
    /// decoding lossily turns such a tail into replacement characters
    /// inside the clipped (already unusable) trailing object, instead of
    /// failing the whole read and silently dropping every salvageable
    /// cell the way a strict `read_to_string` would.
    pub fn load(path: &Path) -> Checkpoint {
        match fs::read(path) {
            Ok(bytes) => Checkpoint::parse(&String::from_utf8_lossy(&bytes)),
            Err(_) => Checkpoint::new(),
        }
    }

    /// Serialize and write atomically: the new content lands in a
    /// sibling temp file first and is renamed over `path`, so a crash
    /// mid-write leaves the previous checkpoint intact.
    pub fn save_atomic(&self, path: &Path) -> Result<(), String> {
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, self.to_json()).map_err(|e| format!("write {}: {e}", tmp.display()))?;
        fs::rename(&tmp, path)
            .map_err(|e| format!("rename {} -> {}: {e}", tmp.display(), path.display()))
    }

    /// The JSON form: a header line, then one cell object per line. The
    /// one-object-per-line layout is what makes truncation salvage
    /// effective: a partial write clips at most the last line.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"version\":{VERSION},\"cells\":[");
        for (i, cell) in self.cells.values().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "{{\"hash\":\"{:016x}\",\"label\":{},\"avg_latency_cycles\":{:?},\
                 \"avg_latency_ns\":{:?},\"throughput_pps\":{:?},\
                 \"energy_nj_per_packet\":{:?},\"bottleneck\":{},\"quality\":{}}}",
                cell.hash,
                escape(&cell.label),
                cell.avg_latency_cycles,
                cell.avg_latency_ns,
                cell.throughput_pps,
                cell.energy_nj_per_packet,
                escape(&cell.bottleneck),
                escape(&cell.quality),
            );
        }
        out.push_str("\n]}\n");
        out
    }

    /// Salvaging parser: scan for the `"cells"` array and collect every
    /// *complete* `{...}` object inside it that carries a valid hash.
    /// Anything else — a clipped trailing object, garbage, a missing
    /// array — contributes nothing. Never errors.
    pub fn parse(text: &str) -> Checkpoint {
        let mut ck = Checkpoint::new();
        let Some(start) = text.find("\"cells\"") else { return ck };
        let bytes = text.as_bytes();
        let mut i = start;
        while i < bytes.len() {
            if bytes[i] == b'{' {
                // Cell objects are flat (no nested braces outside
                // strings), so the matching close is the next unquoted
                // '}'. No close before EOF = truncated object: stop.
                match find_object_end(text, i) {
                    Some(end) => {
                        if let Some(cell) = parse_cell(&text[i..=end]) {
                            ck.insert(cell);
                        }
                        i = end + 1;
                    }
                    None => break,
                }
            } else {
                i += 1;
            }
        }
        ck
    }
}

/// Index of the `}` closing the object that opens at `open` (a `{`),
/// honoring strings and escapes. `None` if the object never closes.
fn find_object_end(text: &str, open: usize) -> Option<usize> {
    let bytes = text.as_bytes();
    let mut in_str = false;
    let mut escaped = false;
    for (off, &b) in bytes[open + 1..].iter().enumerate() {
        if in_str {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_str = false;
            }
        } else if b == b'"' {
            in_str = true;
        } else if b == b'}' {
            return Some(open + 1 + off);
        }
    }
    None
}

/// Parse one flat cell object; `None` when any required field is
/// missing or malformed.
fn parse_cell(obj: &str) -> Option<CellSummary> {
    let hash = u64::from_str_radix(&field_str(obj, "hash")?, 16).ok()?;
    Some(CellSummary {
        hash,
        label: field_str(obj, "label")?,
        avg_latency_cycles: field_f64(obj, "avg_latency_cycles")?,
        avg_latency_ns: field_f64(obj, "avg_latency_ns")?,
        throughput_pps: field_f64(obj, "throughput_pps")?,
        energy_nj_per_packet: field_f64(obj, "energy_nj_per_packet")?,
        bottleneck: field_str(obj, "bottleneck")?,
        quality: field_str(obj, "quality")?,
    })
}

/// Value of `"key":"..."` in a flat object, unescaped.
fn field_str(obj: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let at = obj.find(&needle)? + needle.len();
    let rest = obj.get(at..)?;
    let rest = rest.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                'r' => out.push('\r'),
                'u' => {
                    let code: String = chars.by_ref().take(4).collect();
                    let v = u32::from_str_radix(&code, 16).ok()?;
                    out.push(char::from_u32(v)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None // unterminated string
}

/// Value of `"key":<number>` in a flat object. `{:?}`-formatted floats
/// (including `inf` and `NaN`) round-trip through `str::parse`.
fn field_f64(obj: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = obj.find(&needle)? + needle.len();
    let rest = obj.get(at..)?;
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// JSON string literal for `s` (quotes included).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Content hash identifying a scenario across processes: FNV-1a over the
/// module identity, NIC identity, label, the *full* workload (including
/// `rate_pps` — unlike the sweep's in-process sharing key, a checkpoint
/// entry stands for one complete result), and every option that changes
/// the result. Supervision policy (`deadline_ms`) and test hooks
/// (`inject_panic`) are deliberately excluded: they decide whether a
/// cell *finishes*, never what its numbers are.
pub fn scenario_hash(sc: &SweepScenario<'_>) -> u64 {
    let mut h = Fnv::new();
    h.str(&sc.module.name);
    h.u64(sc.module.states.len() as u64);
    for s in &sc.module.states {
        h.str(&s.name);
        h.u64(s.size_bytes as u64);
    }
    h.str(&sc.params.nic_name);
    h.u64(sc.params.mems.len() as u64);
    h.str(&sc.label);

    let wl = &sc.workload;
    h.u64(wl.flows as u64);
    h.u64(wl.tcp_share.to_bits());
    h.u64(wl.syn_share.to_bits());
    h.u64(wl.avg_payload.to_bits());
    h.u64(wl.max_payload as u64);
    h.u64(wl.rate_pps.to_bits());
    h.u64(wl.zipf_alpha.to_bits());

    let opt = &sc.options;
    h.u64(opt.software_only as u64);
    h.u64(opt.pin_state.len() as u64);
    for (state, region) in &opt.pin_state {
        h.str(state);
        h.str(region);
    }
    h.u64(opt.budget.max_nodes as u64);
    h.u64(opt.solver.warm_start as u64);
    h.u64(opt.solver.memoize as u64);
    h.u64(opt.solver.reference_lp as u64);
    h.finish()
}

/// FNV-1a, 64-bit.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }
    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }
    fn str(&mut self, s: &str) {
        // Length prefix keeps ("ab","c") distinct from ("a","bc").
        self.u64(s.len() as u64);
        for b in s.bytes() {
            self.byte(b);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(hash: u64, label: &str) -> CellSummary {
        CellSummary {
            hash,
            label: label.to_string(),
            avg_latency_cycles: 1234.5,
            avg_latency_ns: 1543.125,
            throughput_pps: 2.5e6,
            energy_nj_per_packet: 98.75,
            bottleneck: "npu-threads".to_string(),
            quality: "optimal".to_string(),
        }
    }

    #[test]
    fn roundtrip_preserves_cells() {
        let mut ck = Checkpoint::new();
        ck.insert(cell(0xdead_beef, "rate=600k payload=1400"));
        ck.insert(cell(42, "weird \"label\"\twith\nescapes\\"));
        let parsed = Checkpoint::parse(&ck.to_json());
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed.get(42).unwrap(), ck.get(42).unwrap());
        assert_eq!(parsed.get(0xdead_beef).unwrap(), ck.get(0xdead_beef).unwrap());
    }

    #[test]
    fn roundtrip_preserves_infinity() {
        let mut c = cell(7, "unloaded");
        c.throughput_pps = f64::INFINITY;
        let mut ck = Checkpoint::new();
        ck.insert(c);
        let parsed = Checkpoint::parse(&ck.to_json());
        assert_eq!(parsed.get(7).unwrap().throughput_pps, f64::INFINITY);
    }

    #[test]
    fn truncation_salvages_complete_cells() {
        let mut ck = Checkpoint::new();
        for i in 0..6u64 {
            ck.insert(cell(i, &format!("cell-{i}")));
        }
        let full = ck.to_json();
        // Clip mid-way: complete leading objects must survive, the
        // clipped trailing one must not corrupt anything.
        for clip in [full.len() / 3, full.len() / 2, full.len() - 5] {
            let parsed = Checkpoint::parse(&full[..clip]);
            assert!(parsed.len() < 6 || clip >= full.len() - 5);
            for i in 0..6u64 {
                if let Some(got) = parsed.get(i) {
                    assert_eq!(got, ck.get(i).unwrap(), "salvaged cell differs");
                }
            }
        }
    }

    #[test]
    fn truncation_mid_multibyte_sequence_salvages_byte_safely() {
        // Labels are free text: multi-byte UTF-8 is legal in them, and a
        // crash mid-write can clip the file at any *byte*, not any char.
        let mut ck = Checkpoint::new();
        for i in 0..4u64 {
            ck.insert(cell(i, &format!("λ-NIC sweep · 東京 №{i} μs")));
        }
        let full = ck.to_json().into_bytes();
        // Clip exactly inside a multi-byte sequence of the *last* cell's
        // label, so everything before it is intact but the file is no
        // longer valid UTF-8.
        let last_multibyte = (0..full.len())
            .rev()
            .find(|&i| full[i] >= 0x80 && (full[i] & 0xc0) == 0x80)
            .expect("labels contain multi-byte chars");
        let clipped = &full[..last_multibyte];
        assert!(
            String::from_utf8(clipped.to_vec()).is_err(),
            "clip point must split a multi-byte sequence"
        );

        let path = std::env::temp_dir()
            .join(format!("clara-ck-multibyte-{}.json", std::process::id()));
        std::fs::write(&path, clipped).unwrap();
        let salvaged = Checkpoint::load(&path);
        let _ = std::fs::remove_file(&path);

        // Every *complete* leading cell survives, bit-for-bit — the old
        // `read_to_string` loader returned an empty checkpoint here and
        // silently recomputed the whole grid.
        assert!(!salvaged.is_empty(), "complete leading cells must be salvaged");
        for i in 0..4u64 {
            if let Some(got) = salvaged.get(i) {
                assert_eq!(got, ck.get(i).unwrap(), "salvaged cell differs");
            }
        }
        // The clipped trailing cell must not have been resurrected from
        // a half-written label.
        assert!(salvaged.len() < 4);
    }

    #[test]
    fn garbage_parses_to_empty() {
        assert!(Checkpoint::parse("").is_empty());
        assert!(Checkpoint::parse("not json at all").is_empty());
        assert!(Checkpoint::parse("{\"version\":1}").is_empty());
        assert!(Checkpoint::parse("{\"cells\":[{\"hash\":\"xyz\"}]}").is_empty());
    }

    #[test]
    fn missing_file_loads_empty() {
        let p = std::env::temp_dir().join("clara-ck-definitely-missing.json");
        assert!(Checkpoint::load(&p).is_empty());
    }

    #[test]
    fn save_is_atomic_and_reloadable() {
        let p = std::env::temp_dir().join("clara-ck-roundtrip-test.json");
        let mut ck = Checkpoint::new();
        ck.insert(cell(1, "one"));
        ck.save_atomic(&p).unwrap();
        ck.insert(cell(2, "two"));
        ck.save_atomic(&p).unwrap();
        let back = Checkpoint::load(&p);
        assert_eq!(back.len(), 2);
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn fnv_length_prefix_disambiguates() {
        let mut a = Fnv::new();
        a.str("ab");
        a.str("c");
        let mut b = Fnv::new();
        b.str("a");
        b.str("bc");
        assert_ne!(a.finish(), b.finish());
    }
}
