//! Reusable prediction sessions: the one-shot pipeline refactored into a
//! long-lived object that amortizes its expensive phases across requests.
//!
//! The one-shot path (`frontend → lower → prepare → solve`) re-does
//! everything per call. A server answering many requests for the same NF
//! wastes most of that: parsing/lowering depends only on the source, and
//! `prepare`'s class profiles + cache model depend only on the
//! workload's *rate-independent* fields. [`NfSession`] owns the lowered
//! module and NIC parameters once, and caches one `Prepared` per
//! workload class (the content-keyed analogue of the sweep's
//! pointer-keyed `PrepKey`), so repeated requests skip straight to the
//! rate-dependent solve.
//!
//! Concurrency: every method takes `&self`; the cache is a mutex-held
//! map of `Arc<Prepared>` entries, and the lock is never held across a
//! `prepare` or a solve. Two threads racing on a cold key may both
//! compute it (benign: `prepare` is pure, first insert wins), which
//! keeps the hot hit path a single short lock.
//!
//! Fault containment: sessions are shared across panic-isolated workers,
//! so a panic mid-request must not leave torn state behind. Nothing in
//! the session is mutated during a prediction (the cache is only
//! touched before/after), but a panicking request's inputs are suspect —
//! [`NfSession::quarantine`] evicts the class entry the request used so
//! the next request on that key recomputes from scratch.
//!
//! Determinism: a session prediction is bit-identical to the one-shot
//! [`crate::predict_with_options`] path — `prepare` is a pure function
//! of `(module, params, workload-class)`, so replaying a cached
//! `Prepared` replays exactly the value the one-shot path would have
//! computed. (Cross-cell ILP warm starts are deliberately *not* used
//! here: a donated seed is only bit-identity-checked within one sweep,
//! and a serving cache must never make the same request return different
//! bits depending on what happened to be cached.)

use crate::predictor::{
    predict_prepared_limited, prepare, PredictError, PredictOptions, Prediction, Prepared,
};
use clara_cir::CirModule;
use clara_map::RunDeadline;
use clara_microbench::NicParameters;
use clara_nicsim::CostCache;
use clara_workload::WorkloadProfile;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The workload fields `prepare` reads — everything except `rate_pps`.
/// Two workloads with equal keys share one `Prepared`. Content-keyed
/// (bit patterns), so it is safe across independent requests, unlike the
/// sweep's pointer-identity `PrepKey`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClassKey {
    tcp_share: u64,
    syn_share: u64,
    avg_payload: u64,
    max_payload: usize,
    flows: usize,
    zipf_alpha: u64,
}

impl ClassKey {
    /// The class key of a workload. Must stay in sync with the fields
    /// `prepare` consumes (`rate_pps` deliberately excluded).
    pub fn of(wl: &WorkloadProfile) -> Self {
        ClassKey {
            tcp_share: wl.tcp_share.to_bits(),
            syn_share: wl.syn_share.to_bits(),
            avg_payload: wl.avg_payload.to_bits(),
            max_payload: wl.max_payload,
            flows: wl.flows,
            zipf_alpha: wl.zipf_alpha.to_bits(),
        }
    }
}

/// Cache effectiveness counters of one session (monotonic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Predictions served from a cached `Prepared`.
    pub prepared_hits: u64,
    /// Predictions that had to compute their `Prepared` first.
    pub prepared_misses: u64,
    /// Class entries evicted by [`NfSession::quarantine`].
    pub quarantined: u64,
    /// Simulator stage costs resolved from the session's shared
    /// [`CostCache`] (cross-request reuse; see `SimStats::memo_hits`).
    pub sim_memo_hits: u64,
    /// Simulator stage costs computed (then published) by requests over
    /// this session.
    pub sim_memo_misses: u64,
    /// Fingerprint views currently interned in the session's cost cache
    /// (drops to 0 after a quarantine purge).
    pub sim_cost_views: u64,
}

/// A long-lived prediction pipeline for one `(NF, target)` pair: the
/// lowered module and measured parameters held once, rate-independent
/// `Prepared` state cached per workload class.
#[derive(Debug)]
pub struct NfSession {
    module: CirModule,
    params: Arc<NicParameters>,
    preps: Mutex<HashMap<ClassKey, Arc<Prepared>>>,
    /// Shared simulator stage-cost cache for validate requests over this
    /// session: repeated requests for the same `(NF, NIC)` replay pure
    /// stage costs instead of re-costing. Keyed internally by post-fault
    /// run fingerprints, so sharing never changes simulated bits.
    sim_costs: Arc<CostCache>,
    hits: AtomicU64,
    misses: AtomicU64,
    quarantined: AtomicU64,
}

impl NfSession {
    /// Build a session by running the frontend and lowering once.
    /// Frontend/lowering failures surface as the same errors the
    /// one-shot path reports; no session is created for a bad source.
    pub fn from_source(
        source: &str,
        params: Arc<NicParameters>,
    ) -> Result<Self, SessionBuildError> {
        let ast = clara_lang::frontend(source).map_err(SessionBuildError::Frontend)?;
        let module = clara_cir::lower(&ast).map_err(SessionBuildError::Lower)?;
        Ok(NfSession::from_module(module, params))
    }

    /// Build a session around an already-lowered module.
    pub fn from_module(module: CirModule, params: Arc<NicParameters>) -> Self {
        NfSession {
            module,
            params,
            preps: Mutex::new(HashMap::new()),
            sim_costs: Arc::new(CostCache::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
        }
    }

    /// The session's lowered module.
    pub fn module(&self) -> &CirModule {
        &self.module
    }

    /// The session's NIC parameters.
    pub fn params(&self) -> &NicParameters {
        &self.params
    }

    /// The session's shared simulator cost cache. Pass it as
    /// `ValidationConfig::cost_cache` (or attach it to a `SimScratch`)
    /// so validate requests over this session reuse each other's pure
    /// stage costs.
    pub fn cost_cache(&self) -> &Arc<CostCache> {
        &self.sim_costs
    }

    /// Predict under `workload`, reusing the class's cached `Prepared`
    /// when one exists. Bit-identical to the one-shot
    /// [`crate::predict_with_options`] on the same inputs. The deadline
    /// is threaded cooperatively into the solver, so an expired or
    /// cancelled request stops mid-solve instead of running to
    /// completion.
    pub fn predict(
        &self,
        workload: &WorkloadProfile,
        options: &PredictOptions,
        deadline: &RunDeadline,
    ) -> Result<Prediction, PredictError> {
        let prepared = self.prepared(workload);
        predict_prepared_limited(&self.module, &self.params, workload, options, &prepared, deadline)
    }

    /// The cached (or freshly computed) rate-independent inputs for
    /// `workload`'s class.
    fn prepared(&self, workload: &WorkloadProfile) -> Arc<Prepared> {
        let key = ClassKey::of(workload);
        if let Some(p) = self.preps.lock().unwrap_or_else(|e| e.into_inner()).get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(p);
        }
        // Compute outside the lock: a slow prepare must not serialize
        // unrelated classes. A racing thread may duplicate the work;
        // `prepare` is pure, so whichever insert lands first is the
        // value everyone replays.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let fresh = Arc::new(prepare(&self.module, &self.params, workload));
        let mut map = self.preps.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(map.entry(key).or_insert(fresh))
    }

    /// Evict the cache entry `workload`'s class used. Called when a
    /// request over this session panicked: the entry is very likely
    /// fine (predictions don't mutate it), but a poisoned request's
    /// inputs are suspect and recomputing one `Prepared` is cheap
    /// relative to serving a corrupted one forever.
    pub fn quarantine(&self, workload: &WorkloadProfile) {
        let evicted = self
            .preps
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&ClassKey::of(workload))
            .is_some();
        if evicted {
            self.quarantined.fetch_add(1, Ordering::Relaxed);
        }
        // The simulator cost cache is evicted wholesale: its views are
        // keyed by run fingerprint, not workload class, so there is no
        // per-class entry to target — and stage costs are cheap to
        // recompute relative to trusting state a panicking request may
        // have touched. Hit/miss history survives (it describes the
        // past, not the contents).
        self.sim_costs.purge();
    }

    /// Number of distinct workload classes currently cached.
    pub fn cached_classes(&self) -> usize {
        self.preps.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Snapshot of the session's cache counters.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            prepared_hits: self.hits.load(Ordering::Relaxed),
            prepared_misses: self.misses.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            sim_memo_hits: self.sim_costs.hits(),
            sim_memo_misses: self.sim_costs.misses(),
            sim_cost_views: self.sim_costs.views() as u64,
        }
    }
}

/// Why a session could not be built (the request never reached the
/// predictor).
#[derive(Debug)]
pub enum SessionBuildError {
    /// The NF source failed to parse or type-check.
    Frontend(clara_lang::LangError),
    /// Lowering to CIR failed.
    Lower(clara_cir::LowerError),
}

impl core::fmt::Display for SessionBuildError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SessionBuildError::Frontend(e) => write!(f, "frontend error: {e}"),
            SessionBuildError::Lower(e) => write!(f, "lowering error: {e}"),
        }
    }
}

impl std::error::Error for SessionBuildError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::predict_with_options;
    use clara_lnic::profiles;
    use clara_microbench::extract_parameters;
    use std::sync::OnceLock;

    const SRC: &str = r#"nf nat {
        state flow_table: map<u64, u64>[65536];
        fn handle(pkt: packet) -> action {
            dpdk.parse_headers(pkt);
            let entry: u64 = flow_table.lookup(hash(pkt.src_ip, pkt.src_port));
            let ck: u16 = checksum(pkt);
            return forward;
        } }"#;

    fn params() -> Arc<NicParameters> {
        static P: OnceLock<Arc<NicParameters>> = OnceLock::new();
        Arc::clone(
            P.get_or_init(|| Arc::new(extract_parameters(&profiles::netronome_agilio_cx40()))),
        )
    }

    #[test]
    fn session_predictions_bit_identical_to_one_shot() {
        let session = NfSession::from_source(SRC, params()).unwrap();
        for rate in [20_000.0, 60_000.0, 600_000.0] {
            let wl = WorkloadProfile { rate_pps: rate, ..WorkloadProfile::paper_default() };
            let fresh =
                predict_with_options(session.module(), &params(), &wl, PredictOptions::default())
                    .unwrap();
            let cached = session
                .predict(&wl, &PredictOptions::default(), &RunDeadline::none())
                .unwrap();
            assert_eq!(fresh.avg_latency_cycles.to_bits(), cached.avg_latency_cycles.to_bits());
            assert_eq!(fresh.throughput_pps.to_bits(), cached.throughput_pps.to_bits());
            assert_eq!(fresh.mapping.node_unit, cached.mapping.node_unit);
        }
        // Three rates, one class: one miss, two hits.
        let stats = session.stats();
        assert_eq!((stats.prepared_misses, stats.prepared_hits), (1, 2));
        assert_eq!(session.cached_classes(), 1);
    }

    #[test]
    fn distinct_classes_get_distinct_entries() {
        let session = NfSession::from_source(SRC, params()).unwrap();
        let a = WorkloadProfile::paper_default();
        let b = WorkloadProfile { flows: 50_000, ..a.clone() };
        let d = RunDeadline::none();
        session.predict(&a, &PredictOptions::default(), &d).unwrap();
        session.predict(&b, &PredictOptions::default(), &d).unwrap();
        assert_eq!(session.cached_classes(), 2);
    }

    #[test]
    fn quarantine_evicts_and_recomputes() {
        let session = NfSession::from_source(SRC, params()).unwrap();
        let wl = WorkloadProfile::paper_default();
        let d = RunDeadline::none();
        let before = session.predict(&wl, &PredictOptions::default(), &d).unwrap();
        session.quarantine(&wl);
        assert_eq!(session.cached_classes(), 0);
        assert_eq!(session.stats().quarantined, 1);
        // Quarantining an absent key is a no-op, not a double count.
        session.quarantine(&wl);
        assert_eq!(session.stats().quarantined, 1);
        let after = session.predict(&wl, &PredictOptions::default(), &d).unwrap();
        assert_eq!(before.avg_latency_cycles.to_bits(), after.avg_latency_cycles.to_bits());
    }

    #[test]
    fn quarantine_purges_sim_cost_cache() {
        use crate::validate::{run_validation_sweep, validation_grid, ValidationConfig};
        use clara_nicsim::{MicroOp, NicProgram, Stage, StageUnit, TableCfg};
        let session = NfSession::from_source(SRC, params()).unwrap();
        // Multi-stage program: the parse stage is Fixed and the checksum
        // stage PayloadPure, so validate runs intern views in the
        // session's cache.
        let program = NicProgram {
            name: "nat".into(),
            tables: vec![TableCfg {
                name: "flow_table".into(),
                mem: "emem".into(),
                entry_bytes: 16,
                entries: 65_536,
                use_flow_cache: true,
            }],
            stages: vec![
                Stage {
                    name: "parse".into(),
                    unit: StageUnit::Npu,
                    ops: vec![MicroOp::ParseHeader, MicroOp::Hash { count: 1 }],
                },
                Stage {
                    name: "lookup".into(),
                    unit: StageUnit::Npu,
                    ops: vec![MicroOp::TableLookup { table: 0 }],
                },
                Stage {
                    name: "checksum".into(),
                    unit: StageUnit::Npu,
                    ops: vec![MicroOp::ChecksumSw],
                },
            ],
        };
        let nic = profiles::netronome_agilio_cx40();
        let cfg = ValidationConfig {
            threads: 1,
            packets: 400,
            cost_cache: Some(Arc::clone(session.cost_cache())),
            ..ValidationConfig::default()
        };
        run_validation_sweep(
            session.module(),
            session.params(),
            &nic,
            &program,
            &validation_grid(1),
            &cfg,
        );
        let st = session.stats();
        assert!(st.sim_cost_views > 0, "validate runs must intern views: {st:?}");
        assert!(st.sim_memo_misses > 0, "first runs publish, not hit: {st:?}");
        session.quarantine(&WorkloadProfile::paper_default());
        let st = session.stats();
        assert_eq!(st.sim_cost_views, 0, "quarantine evicts the cost cache wholesale");
        assert!(st.sim_memo_misses > 0, "hit/miss history survives the purge");
    }

    #[test]
    fn expired_deadline_times_out() {
        let session = NfSession::from_source(SRC, params()).unwrap();
        let wl = WorkloadProfile::paper_default();
        let err = session
            .predict(&wl, &PredictOptions::default(), &RunDeadline::within_ms(Some(0)))
            .unwrap_err();
        assert!(matches!(err, PredictError::TimedOut), "{err}");
    }

    #[test]
    fn bad_source_never_builds_a_session() {
        let err = NfSession::from_source("nf broken {", params()).unwrap_err();
        assert!(matches!(err, SessionBuildError::Frontend(_)), "{err}");
    }
}
