//! Parallel prediction sweeps.
//!
//! Clara's workflow is exploratory: the developer asks "what happens at
//! 600 kpps with 1400-byte payloads?" over a whole grid of rates,
//! payload sizes, flow counts, and porting strategies (§2.3). Every
//! scenario is an independent pure function of its inputs, so a sweep
//! fans scenarios across a scoped thread pool.
//!
//! Determinism: results are written to per-scenario slots, so the output
//! order equals the input order and is bit-identical to a sequential
//! run regardless of thread count or scheduling.

use crate::predictor::{predict_prepared, prepare, PredictError, PredictOptions, Prediction, Prepared};
use clara_cir::CirModule;
use clara_microbench::NicParameters;
use clara_workload::WorkloadProfile;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// One cell of a sweep grid: an NF to predict under one workload and
/// strategy. Modules and parameter tables are borrowed — a 64-scenario
/// sweep over one NF shares a single lowered module.
#[derive(Debug, Clone)]
pub struct SweepScenario<'a> {
    /// Human-readable cell label (e.g. `rate=600k payload=1400`).
    pub label: String,
    /// The lowered NF.
    pub module: &'a CirModule,
    /// Measured NIC parameters.
    pub params: &'a NicParameters,
    /// Traffic for this cell.
    pub workload: WorkloadProfile,
    /// Porting strategy and solver knobs for this cell.
    pub options: PredictOptions,
}

/// The inputs of [`prepare`] a scenario depends on: module and parameter
/// identities plus every workload field the rate-independent phase reads
/// (`rate_pps` deliberately excluded — cells differing only in offered
/// rate share one `Prepared`). Must stay in sync with what
/// [`prepare`] consumes.
#[derive(PartialEq, Eq, Hash)]
struct PrepKey {
    module: usize,
    params: usize,
    tcp_share: u64,
    syn_share: u64,
    avg_payload: u64,
    max_payload: usize,
    flows: usize,
    zipf_alpha: u64,
}

impl PrepKey {
    fn of(sc: &SweepScenario<'_>) -> Self {
        let wl = &sc.workload;
        PrepKey {
            module: sc.module as *const CirModule as usize,
            params: sc.params as *const NicParameters as usize,
            tcp_share: wl.tcp_share.to_bits(),
            syn_share: wl.syn_share.to_bits(),
            avg_payload: wl.avg_payload.to_bits(),
            max_payload: wl.max_payload,
            flows: wl.flows,
            zipf_alpha: wl.zipf_alpha.to_bits(),
        }
    }
}

/// Run every scenario and return predictions in input order.
///
/// The expensive rate-independent inputs (CIR interpreter class
/// profiles, Zipf cache model) are computed once per *unique*
/// [`PrepKey`] and shared — a 4×4×4 rate/payload/flows grid does the
/// interpreter work 16 times, not 64. Because predictions are pure
/// functions of those shared inputs, sharing never changes a result.
///
/// `threads == 0` uses [`std::thread::available_parallelism`];
/// `threads <= 1` runs inline on the caller's thread (no pool, same
/// results). Worker threads pull scenarios from a shared counter, so an
/// expensive cell never blocks the rest of its stripe; output order
/// equals input order regardless of scheduling.
pub fn run_sweep<'a>(
    scenarios: &[SweepScenario<'a>],
    threads: usize,
) -> Vec<Result<Prediction, PredictError>> {
    let threads = match threads {
        0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        n => n,
    };

    // One shared slot per distinct rate-independent input set.
    let mut prep_ids: HashMap<PrepKey, usize> = HashMap::new();
    let mut prep_of: Vec<usize> = Vec::with_capacity(scenarios.len());
    for sc in scenarios {
        let n = prep_ids.len();
        prep_of.push(*prep_ids.entry(PrepKey::of(sc)).or_insert(n));
    }
    let preps: Vec<OnceLock<Prepared>> = (0..prep_ids.len()).map(|_| OnceLock::new()).collect();

    let run_one = |i: usize| {
        let sc = &scenarios[i];
        let prepared = preps[prep_of[i]]
            .get_or_init(|| prepare(sc.module, sc.params, &sc.workload));
        predict_prepared(sc.module, sc.params, &sc.workload, &sc.options, prepared)
    };
    if threads <= 1 || scenarios.len() <= 1 {
        return (0..scenarios.len()).map(run_one).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<OnceLock<Result<Prediction, PredictError>>> =
        (0..scenarios.len()).map(|_| OnceLock::new()).collect();
    std::thread::scope(|s| {
        for _ in 0..threads.min(scenarios.len()) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= scenarios.len() {
                    break;
                }
                // A slot is claimed by exactly one worker; set cannot fail.
                let _ = slots[i].set(run_one(i));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every sweep slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use clara_cir::lower;
    use clara_lang::frontend;
    use clara_lnic::profiles;
    use clara_microbench::extract_parameters;
    use std::sync::OnceLock as Cell;

    fn params() -> &'static NicParameters {
        static P: Cell<NicParameters> = Cell::new();
        P.get_or_init(|| extract_parameters(&profiles::netronome_agilio_cx40()))
    }

    fn module() -> CirModule {
        let src = r#"nf nat {
            state flow_table: map<u64, u64>[65536];
            fn handle(pkt: packet) -> action {
                dpdk.parse_headers(pkt);
                let entry: u64 = flow_table.lookup(hash(pkt.src_ip, pkt.src_port));
                let ck: u16 = checksum(pkt);
                return forward;
            } }"#;
        lower(&frontend(src).unwrap()).unwrap()
    }

    fn grid<'a>(module: &'a CirModule, params: &'a NicParameters) -> Vec<SweepScenario<'a>> {
        let mut out = Vec::new();
        for rate in [20_000.0, 200_000.0] {
            for payload in [100.0, 1400.0] {
                out.push(SweepScenario {
                    label: format!("rate={rate} payload={payload}"),
                    module,
                    params,
                    workload: WorkloadProfile {
                        rate_pps: rate,
                        avg_payload: payload,
                        max_payload: payload as usize,
                        ..WorkloadProfile::paper_default()
                    },
                    options: PredictOptions::default(),
                });
            }
        }
        out
    }

    #[test]
    fn sweep_matches_sequential_predictions() {
        let m = module();
        let p = params();
        let scenarios = grid(&m, p);
        let seq = run_sweep(&scenarios, 1);
        let par = run_sweep(&scenarios, 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            // Bit-identical, not merely close: same inputs, same code
            // path, slot-ordered output.
            assert_eq!(a.avg_latency_cycles.to_bits(), b.avg_latency_cycles.to_bits());
            assert_eq!(a.throughput_pps.to_bits(), b.throughput_pps.to_bits());
            assert_eq!(a.mapping.node_unit, b.mapping.node_unit);
        }
    }

    #[test]
    fn sweep_reports_per_cell_errors() {
        let m = module();
        let p = params();
        let mut scenarios = grid(&m, p);
        scenarios[1].options.pin_state = vec![("nope".into(), "emem".into())];
        let out = run_sweep(&scenarios, 2);
        assert!(out[0].is_ok());
        assert!(out[1].is_err(), "bad pin must fail only its own cell");
        assert!(out[2].is_ok());
    }
}
