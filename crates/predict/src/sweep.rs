//! Parallel prediction sweeps.
//!
//! Clara's workflow is exploratory: the developer asks "what happens at
//! 600 kpps with 1400-byte payloads?" over a whole grid of rates,
//! payload sizes, flow counts, and porting strategies (§2.3). Every
//! scenario is an independent pure function of its inputs, so a sweep
//! fans scenarios across a scoped thread pool.
//!
//! Determinism: results are written to per-scenario slots, so the output
//! order equals the input order and is bit-identical to a sequential
//! run regardless of thread count or scheduling.
//!
//! Fault containment: each cell runs under `catch_unwind`, so one
//! panicking prediction becomes that cell's [`PredictError::Panicked`]
//! instead of unwinding the whole `thread::scope` and aborting every
//! sibling. See [`crate::supervisor`] for deadlines, retries, and
//! checkpoint/resume on top of this.

use crate::predictor::{
    predict_prepared_seeded, prepare, PredictError, PredictOptions, Prediction, Prepared,
};
use clara_cir::CirModule;
use clara_map::{IlpSeed, RunDeadline};
use clara_microbench::NicParameters;
use clara_workload::WorkloadProfile;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// One cell of a sweep grid: an NF to predict under one workload and
/// strategy. Modules and parameter tables are borrowed — a 64-scenario
/// sweep over one NF shares a single lowered module.
#[derive(Debug, Clone)]
pub struct SweepScenario<'a> {
    /// Human-readable cell label (e.g. `rate=600k payload=1400`).
    pub label: String,
    /// The lowered NF.
    pub module: &'a CirModule,
    /// Measured NIC parameters.
    pub params: &'a NicParameters,
    /// Traffic for this cell.
    pub workload: WorkloadProfile,
    /// Porting strategy and solver knobs for this cell.
    pub options: PredictOptions,
}

/// The inputs of [`prepare`] a scenario depends on: module and parameter
/// identities plus every workload field the rate-independent phase reads
/// (`rate_pps` deliberately excluded — cells differing only in offered
/// rate share one `Prepared`). Must stay in sync with what
/// [`prepare`] consumes.
///
/// # Pointer identity
///
/// `module` and `params` are *addresses*, not contents. That is sound
/// only because [`SweepScenario`] borrows both for the sweep's entire
/// lifetime (`'a` outlives the `PrepShare`), so no address can be freed
/// and reused for a different module mid-sweep. Do not build `PrepKey`s
/// from temporaries or across independent sweep invocations; the
/// debug-build fingerprint check in [`PrepShare`] exists to catch
/// exactly that kind of refactor going wrong.
#[derive(PartialEq, Eq, Hash)]
struct PrepKey {
    module: usize,
    params: usize,
    tcp_share: u64,
    syn_share: u64,
    avg_payload: u64,
    max_payload: usize,
    flows: usize,
    zipf_alpha: u64,
}

impl PrepKey {
    fn of(sc: &SweepScenario<'_>) -> Self {
        let wl = &sc.workload;
        PrepKey {
            module: sc.module as *const CirModule as usize,
            params: sc.params as *const NicParameters as usize,
            tcp_share: wl.tcp_share.to_bits(),
            syn_share: wl.syn_share.to_bits(),
            avg_payload: wl.avg_payload.to_bits(),
            max_payload: wl.max_payload,
            flows: wl.flows,
            zipf_alpha: wl.zipf_alpha.to_bits(),
        }
    }
}

/// Cheap content fingerprint backing the debug assertion on
/// [`PrepKey`]'s pointer-identity assumption: if two scenarios alias the
/// same addresses they must also describe the same module/NIC.
#[cfg(debug_assertions)]
#[derive(PartialEq, Debug, Clone)]
struct PrepFingerprint {
    module_name: String,
    module_states: usize,
    nic_name: String,
    nic_mems: usize,
}

#[cfg(debug_assertions)]
impl PrepFingerprint {
    fn of(sc: &SweepScenario<'_>) -> Self {
        PrepFingerprint {
            module_name: sc.module.name.clone(),
            module_states: sc.module.states.len(),
            nic_name: sc.params.nic_name.clone(),
            nic_mems: sc.params.mems.len(),
        }
    }
}

/// The shared rate-independent inputs of a sweep: one [`Prepared`] slot
/// per distinct [`PrepKey`], lazily filled by whichever worker reaches
/// that key first. Shared between the plain [`run_sweep`] and the
/// supervised sweep so both resolve identical `Prepared` values (and
/// therefore bit-identical predictions).
pub(crate) struct PrepShare {
    /// Scenario index → prep slot index.
    prep_of: Vec<usize>,
    preps: Vec<OnceLock<Prepared>>,
    warm: CellWarmStart,
}

/// Star-topology cross-cell ILP warm starts: each prep group designates
/// its *first* scenario (in input order) as the seed donor; every other
/// cell of the group seeds its branch-and-bound from the donor's solved
/// mapping. The donor itself always solves cold.
///
/// Determinism: the donor index is fixed by input order and its seed is
/// a pure function of the donor scenario's contents (with the panic
/// test hook stripped), computed on first demand under a `OnceLock` —
/// so seeding decisions are identical for every thread schedule,
/// keeping parallel sweeps bit-identical to sequential ones, and a
/// masked-out (panicking) donor still yields the same seed its healthy
/// twin would have.
pub(crate) struct CellWarmStart {
    /// Prep slot → index of the group's first scenario (the donor).
    donor_of: Vec<usize>,
    /// Prep slot → the donor's exported seed. `None` when the donor's
    /// prediction failed or panicked; siblings then solve cold.
    seeds: Vec<OnceLock<Option<IlpSeed>>>,
}

impl PrepShare {
    pub(crate) fn build(scenarios: &[SweepScenario<'_>]) -> Self {
        let mut prep_ids: HashMap<PrepKey, usize> = HashMap::new();
        let mut prep_of: Vec<usize> = Vec::with_capacity(scenarios.len());
        let mut donor_of: Vec<usize> = Vec::new();
        #[cfg(debug_assertions)]
        let mut fingerprints: Vec<PrepFingerprint> = Vec::new();
        for (i, sc) in scenarios.iter().enumerate() {
            let n = prep_ids.len();
            let id = *prep_ids.entry(PrepKey::of(sc)).or_insert(n);
            if id == donor_of.len() {
                donor_of.push(i);
            }
            #[cfg(debug_assertions)]
            {
                let fp = PrepFingerprint::of(sc);
                if id == fingerprints.len() {
                    fingerprints.push(fp);
                } else {
                    debug_assert_eq!(
                        fingerprints[id], fp,
                        "PrepKey pointer-identity violated: two scenarios share \
                         module/params addresses but describe different contents"
                    );
                }
            }
            prep_of.push(id);
        }
        let preps = (0..prep_ids.len()).map(|_| OnceLock::new()).collect();
        let seeds = (0..prep_ids.len()).map(|_| OnceLock::new()).collect();
        PrepShare { prep_of, preps, warm: CellWarmStart { donor_of, seeds } }
    }

    /// The shared `Prepared` for scenario `i`, computing it on first use.
    ///
    /// A panic inside [`prepare`] leaves the `OnceLock` *empty* (not
    /// poisoned), so a retry of the same cell recomputes it cleanly.
    pub(crate) fn prepared(&self, scenarios: &[SweepScenario<'_>], i: usize) -> &Prepared {
        let sc = &scenarios[i];
        self.preps[self.prep_of[i]].get_or_init(|| prepare(sc.module, sc.params, &sc.workload))
    }

    /// The cross-cell warm-start seed for scenario `i`: `None` for the
    /// donor itself (it solves cold), otherwise the donor's exported
    /// seed, computing the donor's prediction on first demand.
    ///
    /// The donor computation runs under its own `catch_unwind` and its
    /// own options-derived deadline, so a panicking, failing, or
    /// deadline-bound donor costs the group its seed — every sibling
    /// then solves cold — but never a wrong or schedule-dependent
    /// result.
    pub(crate) fn seed_for(
        &self,
        scenarios: &[SweepScenario<'_>],
        i: usize,
    ) -> Option<IlpSeed> {
        let slot = self.prep_of[i];
        let donor = self.warm.donor_of[slot];
        if donor == i {
            return None;
        }
        self.warm.seeds[slot]
            .get_or_init(|| {
                let sc = &scenarios[donor];
                let mut options = sc.options.clone();
                options.inject_panic = false;
                let deadline = RunDeadline::within_ms(options.deadline_ms);
                catch_unwind(AssertUnwindSafe(|| {
                    let prepared = self.prepared(scenarios, donor);
                    predict_prepared_seeded(
                        sc.module,
                        sc.params,
                        &sc.workload,
                        &options,
                        prepared,
                        &deadline,
                        None,
                    )
                    .ok()
                    .and_then(|p| p.mapping.ilp_seed)
                }))
                .unwrap_or(None)
            })
            .clone()
    }
}

/// Run scenario `i` with panics contained to the cell, honoring the
/// cell's own `deadline_ms` option (the plain sweep path).
pub(crate) fn run_cell_isolated(
    scenarios: &[SweepScenario<'_>],
    share: &PrepShare,
    i: usize,
) -> Result<Prediction, PredictError> {
    let deadline = RunDeadline::within_ms(scenarios[i].options.deadline_ms);
    run_cell_supervised(scenarios, share, i, &deadline)
}

/// Run scenario `i` with panics contained to the cell, under an
/// externally armed deadline/cancel token (the supervised path —
/// [`crate::supervisor`] combines its run-wide deadline and cancel
/// token with the cell's own options before calling this).
pub(crate) fn run_cell_supervised(
    scenarios: &[SweepScenario<'_>],
    share: &PrepShare,
    i: usize,
    deadline: &RunDeadline,
) -> Result<Prediction, PredictError> {
    // AssertUnwindSafe: on panic every value touched by the closure is
    // discarded except the shared `PrepShare`, and a panicking
    // `get_or_init` leaves its `OnceLock` empty rather than torn.
    catch_unwind(AssertUnwindSafe(|| {
        let sc = &scenarios[i];
        let prepared = share.prepared(scenarios, i);
        let seed = share.seed_for(scenarios, i);
        predict_prepared_seeded(
            sc.module,
            sc.params,
            &sc.workload,
            &sc.options,
            prepared,
            deadline,
            seed.as_ref(),
        )
    }))
    .unwrap_or_else(|payload| {
        let payload = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        };
        Err(PredictError::Panicked { cell: i, payload })
    })
}

/// Run every scenario and return predictions in input order.
///
/// The expensive rate-independent inputs (CIR interpreter class
/// profiles, Zipf cache model) are computed once per *unique*
/// `PrepKey` and shared — a 4×4×4 rate/payload/flows grid does the
/// interpreter work 16 times, not 64. Because predictions are pure
/// functions of those shared inputs, sharing never changes a result.
///
/// `threads == 0` uses [`std::thread::available_parallelism`];
/// `threads <= 1` runs inline on the caller's thread (no pool, same
/// results). Worker threads pull scenarios from a shared counter, so an
/// expensive cell never blocks the rest of its stripe; output order
/// equals input order regardless of scheduling.
///
/// A cell that panics yields [`PredictError::Panicked`] for that cell
/// only; siblings complete normally. A slot left unfilled by a dead
/// worker (unreachable today) degrades to [`PredictError::Lost`] rather
/// than aborting the process.
pub fn run_sweep<'a>(
    scenarios: &[SweepScenario<'a>],
    threads: usize,
) -> Vec<Result<Prediction, PredictError>> {
    let threads = match threads {
        0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        n => n,
    };

    let share = PrepShare::build(scenarios);
    if threads <= 1 || scenarios.len() <= 1 {
        return (0..scenarios.len())
            .map(|i| run_cell_isolated(scenarios, &share, i))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<OnceLock<Result<Prediction, PredictError>>> =
        (0..scenarios.len()).map(|_| OnceLock::new()).collect();
    std::thread::scope(|s| {
        for _ in 0..threads.min(scenarios.len()) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= scenarios.len() {
                    break;
                }
                // A slot is claimed by exactly one worker; set cannot fail.
                let _ = slots[i].set(run_cell_isolated(scenarios, &share, i));
            });
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .unwrap_or(Err(PredictError::Lost { cell: i }))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use clara_cir::lower;
    use clara_lang::frontend;
    use clara_lnic::profiles;
    use clara_microbench::extract_parameters;
    use proptest::prelude::*;
    use std::sync::OnceLock as Cell;

    fn params() -> &'static NicParameters {
        static P: Cell<NicParameters> = Cell::new();
        P.get_or_init(|| extract_parameters(&profiles::netronome_agilio_cx40()))
    }

    fn module() -> CirModule {
        let src = r#"nf nat {
            state flow_table: map<u64, u64>[65536];
            fn handle(pkt: packet) -> action {
                dpdk.parse_headers(pkt);
                let entry: u64 = flow_table.lookup(hash(pkt.src_ip, pkt.src_port));
                let ck: u16 = checksum(pkt);
                return forward;
            } }"#;
        lower(&frontend(src).unwrap()).unwrap()
    }

    fn grid<'a>(module: &'a CirModule, params: &'a NicParameters) -> Vec<SweepScenario<'a>> {
        let mut out = Vec::new();
        for rate in [20_000.0, 200_000.0] {
            for payload in [100.0, 1400.0] {
                out.push(SweepScenario {
                    label: format!("rate={rate} payload={payload}"),
                    module,
                    params,
                    workload: WorkloadProfile {
                        rate_pps: rate,
                        avg_payload: payload,
                        max_payload: payload as usize,
                        ..WorkloadProfile::paper_default()
                    },
                    options: PredictOptions::default(),
                });
            }
        }
        out
    }

    #[test]
    fn sweep_matches_sequential_predictions() {
        let m = module();
        let p = params();
        let scenarios = grid(&m, p);
        let seq = run_sweep(&scenarios, 1);
        let par = run_sweep(&scenarios, 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            // Bit-identical, not merely close: same inputs, same code
            // path, slot-ordered output.
            assert_eq!(a.avg_latency_cycles.to_bits(), b.avg_latency_cycles.to_bits());
            assert_eq!(a.throughput_pps.to_bits(), b.throughput_pps.to_bits());
            assert_eq!(a.mapping.node_unit, b.mapping.node_unit);
        }
    }

    #[test]
    fn sweep_reports_per_cell_errors() {
        let m = module();
        let p = params();
        let mut scenarios = grid(&m, p);
        scenarios[1].options.pin_state = vec![("nope".into(), "emem".into())];
        let out = run_sweep(&scenarios, 2);
        assert!(out[0].is_ok());
        assert!(out[1].is_err(), "bad pin must fail only its own cell");
        assert!(out[2].is_ok());
    }

    #[test]
    fn panicking_cell_is_isolated() {
        let m = module();
        let p = params();
        let mut scenarios = grid(&m, p);
        scenarios[2].options.inject_panic = true;
        for threads in [1, 4] {
            let out = run_sweep(&scenarios, threads);
            assert!(out[0].is_ok());
            assert!(out[1].is_ok());
            match &out[2] {
                Err(PredictError::Panicked { cell: 2, payload }) => {
                    assert!(payload.contains("injected panic"), "{payload}");
                }
                other => panic!("expected Panicked for cell 2, got {other:?}"),
            }
            assert!(out[3].is_ok());
        }
    }

    /// Sequential all-healthy reference results, as bit patterns of
    /// `(avg_latency_cycles, throughput_pps)`. Predictions are pure
    /// functions of scenario *contents*, so one cached baseline is valid
    /// for every freshly lowered copy of the same module.
    fn baseline_bits() -> &'static Vec<(u64, u64)> {
        static B: Cell<Vec<(u64, u64)>> = Cell::new();
        B.get_or_init(|| {
            let m = module();
            let p = params();
            run_sweep(&grid(&m, p), 1)
                .into_iter()
                .map(|r| {
                    let r = r.unwrap();
                    (r.avg_latency_cycles.to_bits(), r.throughput_pps.to_bits())
                })
                .collect()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]
        /// Randomly injected panics never lose or reorder sibling
        /// results: every healthy cell stays bit-identical to its
        /// sequential all-healthy counterpart, and every panicking cell
        /// reports its own index.
        #[test]
        fn random_panic_masks_never_corrupt_siblings(mask in proptest::collection::vec(any::<bool>(), 4)) {
            let m = module();
            let p = params();
            let baseline = baseline_bits();

            let mut scenarios = grid(&m, p);
            for (sc, &panic_me) in scenarios.iter_mut().zip(&mask) {
                sc.options.inject_panic = panic_me;
            }
            let out = run_sweep(&scenarios, 4);
            prop_assert_eq!(out.len(), scenarios.len());
            for (i, res) in out.iter().enumerate() {
                if mask[i] {
                    match res {
                        Err(PredictError::Panicked { cell, .. }) => prop_assert_eq!(*cell, i),
                        other => return Err(TestCaseError::fail(format!(
                            "cell {i} should have panicked, got {other:?}"
                        ))),
                    }
                } else {
                    let got = res.as_ref().unwrap();
                    prop_assert_eq!(baseline[i].0, got.avg_latency_cycles.to_bits());
                    prop_assert_eq!(baseline[i].1, got.throughput_pps.to_bits());
                }
            }
        }
    }
}
