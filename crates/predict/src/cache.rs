//! Analytical cache-hit estimation from the workload's flow structure.
//!
//! "Flow distributions ... could result in different working set sizes,
//! which in turn cause different memory access patterns and cache
//! behaviors" (§2.1). The model: a state table keyed by flow touches one
//! entry per flow; a cache (or the flow-cache engine) retains the hottest
//! entries it can hold; the expected hit ratio is the probability mass of
//! those retained flows under the workload's popularity distribution
//! (Zipf with the profile's exponent; uniform when α = 0).

use clara_map::StateSpec;
use clara_microbench::NicParameters;
use clara_workload::{WorkloadProfile, Zipf};

/// Cache line size assumed for resident-entry accounting.
const LINE: f64 = 64.0;

/// Expected hit ratio when `state` is placed in `region` under
/// `workload`.
pub fn state_region_hit(
    state: &StateSpec,
    region: &clara_microbench::MemEst,
    workload: &WorkloadProfile,
) -> f64 {
    state_region_hit_shared(state, region, workload, &mut None)
}

/// [`state_region_hit`] with a caller-owned Zipf table. Building the
/// cumulative Zipf mass is O(flows) with a `powf` per rank — at 100k
/// flows it dwarfs everything else in the hit model — but it depends
/// only on `(flows, zipf_alpha)`, so one table serves every (state,
/// region) pair of a prediction. Lazily built: uniform workloads that
/// fit in cache never pay for it.
fn state_region_hit_shared(
    state: &StateSpec,
    region: &clara_microbench::MemEst,
    workload: &WorkloadProfile,
    zipf: &mut Option<Zipf>,
) -> f64 {
    let Some(cache) = &region.cache else { return 0.0 };
    // Content-addressed state (LPM rule tables, DPI automata arrays):
    // accesses draw (approximately uniformly) from the table's lines.
    // Within one reuse epoch — every flow sending one packet — the set of
    // *distinct* lines touched follows the occupancy law
    // `touched = N·(1 − e^(−draws/N))`, and the cache retains
    // `min(C, touched)` of them, so the expected hit ratio is
    // `C / touched`. Per-packet draws are approximated by the payload
    // size (DPI automata are walked once per payload byte).
    if matches!(state.class, clara_map::StateClass::Lpm | clara_map::StateClass::Array) {
        let n_lines = (state.size_bytes as f64 / LINE).max(1.0);
        let c_lines = cache.capacity / LINE;
        let draws = workload.flows.max(1) as f64 * workload.avg_payload.max(1.0);
        let touched = n_lines * (1.0 - (-draws / n_lines).exp());
        return (c_lines / touched.max(1.0)).min(1.0);
    }
    // Flow-addressed state: one entry per flow; the cache retains the
    // hottest flows' entries.
    let entry_bytes = (state.size_bytes as f64 / state.entries.max(1) as f64).max(1.0);
    // One line caches floor(LINE / entry) entries when entries are small,
    // or an entry occupies several lines when large.
    let lines_per_entry = (entry_bytes / LINE).max(1.0);
    let resident_entries = (cache.capacity / (LINE * lines_per_entry)).max(0.0);
    let touched = workload.flows.max(1) as f64;
    if touched <= resident_entries {
        return 1.0;
    }
    zipf.get_or_insert_with(|| Zipf::new(workload.flows.max(1), workload.zipf_alpha.max(0.0)))
        .mass(resident_entries as usize)
}

/// Hit matrix `[state][region]` for the mapping ILP.
pub fn state_hit_matrix(
    states: &[StateSpec],
    params: &NicParameters,
    workload: &WorkloadProfile,
) -> Vec<Vec<f64>> {
    hit_model(states, params, workload).0
}

/// The full cache model for one prediction: the `[state][region]` hit
/// matrix plus the flow-cache engine hit ratio, sharing a single Zipf
/// table across every cell.
pub fn hit_model(
    states: &[StateSpec],
    params: &NicParameters,
    workload: &WorkloadProfile,
) -> (Vec<Vec<f64>>, f64) {
    let mut zipf = None;
    let matrix = states
        .iter()
        .map(|s| {
            params
                .mems
                .iter()
                .map(|m| state_region_hit_shared(s, m, workload, &mut zipf))
                .collect()
        })
        .collect();
    (matrix, fc_hit_shared(params, workload, &mut zipf))
}

/// Expected flow-cache engine hit ratio: the mass of flows that fit in
/// the engine's (estimated) entry capacity.
pub fn fc_hit_ratio(params: &NicParameters, workload: &WorkloadProfile) -> f64 {
    fc_hit_shared(params, workload, &mut None)
}

fn fc_hit_shared(
    params: &NicParameters,
    workload: &WorkloadProfile,
    zipf: &mut Option<Zipf>,
) -> f64 {
    if !params.flow_cache_entries.is_finite() || params.flow_cache_entries <= 0.0 {
        return 0.0;
    }
    let capacity = params.flow_cache_entries;
    let flows = workload.flows.max(1);
    if (flows as f64) <= capacity {
        return 1.0;
    }
    zipf.get_or_insert_with(|| Zipf::new(flows, workload.zipf_alpha.max(0.0)))
        .mass(capacity as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clara_map::StateClass;
    use clara_microbench::{CacheEst, MemEst};

    fn region(cache: Option<CacheEst>) -> MemEst {
        MemEst {
            name: "r".into(),
            capacity: 8 << 30,
            latency: 500.0,
            bulk_per_byte: 4.0,
            cache,
            placeable: true,
            numa_extra: 0.0,
        }
    }

    fn state(entries: u64, entry_bytes: u64) -> StateSpec {
        StateSpec {
            name: "s".into(),
            class: StateClass::ExactMatch,
            entries,
            size_bytes: (entries * entry_bytes) as usize,
        }
    }

    fn wl(flows: usize, alpha: f64) -> WorkloadProfile {
        WorkloadProfile {
            flows,
            tcp_share: 1.0,
            syn_share: 0.0,
            avg_payload: 300.0,
            max_payload: 300,
            rate_pps: 60_000.0,
            zipf_alpha: alpha,
        }
    }

    #[test]
    fn uncached_region_never_hits() {
        assert_eq!(state_region_hit(&state(1000, 16), &region(None), &wl(100, 0.0)), 0.0);
    }

    #[test]
    fn small_working_set_always_hits() {
        let r = region(Some(CacheEst { capacity: 3e6, hit_latency: 150.0 }));
        // 1000 flows x 1 line each = 64 kB << 3 MB.
        assert_eq!(state_region_hit(&state(100_000, 16), &r, &wl(1000, 0.0)), 1.0);
    }

    #[test]
    fn uniform_overflow_hits_proportionally() {
        let r = region(Some(CacheEst { capacity: 3.2e6, hit_latency: 150.0 }));
        // Resident: 3.2e6/64 = 50k entries; 100k uniform flows -> ~50%.
        let h = state_region_hit(&state(1 << 20, 16), &r, &wl(100_000, 0.0));
        assert!((h - 0.5).abs() < 0.02, "hit {h}");
    }

    #[test]
    fn zipf_skew_raises_hits() {
        let r = region(Some(CacheEst { capacity: 3.2e6, hit_latency: 150.0 }));
        let uniform = state_region_hit(&state(1 << 20, 16), &r, &wl(200_000, 0.0));
        let skewed = state_region_hit(&state(1 << 20, 16), &r, &wl(200_000, 1.2));
        assert!(skewed > uniform + 0.2, "uniform {uniform} skewed {skewed}");
    }

    #[test]
    fn big_entries_reduce_resident_count() {
        let r = region(Some(CacheEst { capacity: 3.2e6, hit_latency: 150.0 }));
        let small_entries = state_region_hit(&state(1 << 20, 16), &r, &wl(100_000, 0.0));
        let big_entries = state_region_hit(&state(1 << 20, 256), &r, &wl(100_000, 0.0));
        assert!(big_entries < small_entries, "small {small_entries} big {big_entries}");
    }

    #[test]
    fn fc_hit_depends_on_capacity_and_flows() {
        let mut p = fake_params(32_768.0);
        assert_eq!(fc_hit_ratio(&p, &wl(1000, 0.0)), 1.0);
        let h = fc_hit_ratio(&p, &wl(65_536, 0.0));
        assert!((h - 0.5).abs() < 0.02, "hit {h}");
        p.flow_cache_entries = f64::INFINITY;
        assert_eq!(fc_hit_ratio(&p, &wl(1000, 0.0)), 0.0);
    }

    fn fake_params(fc_entries: f64) -> NicParameters {
        NicParameters {
            nic_name: "t".into(),
            freq_ghz: 1.0,
            total_threads: 8,
            has_fpu: false,
            pipelined: false,
            nj_per_cycle: 0.5,
            parse_header: 150.0,
            metadata_mod: 3.0,
            hash: 20.0,
            float_op: 80.0,
            stream_per_byte_resident: 2.0,
            stream_per_byte_spilled: 4.0,
            hub_overhead: 100.0,
            flow_cache_hit: 44.0,
            flow_cache_entries: fc_entries,
            linear_scan_per_entry: 40.0,
            checksum_sw: clara_microbench::AccelEst { base: 50.0, per_byte: 2.0 },
            alu: 1.0,
            mul: 5.0,
            div: 40.0,
            branch: 2.0,
            mems: vec![],
            accels: Default::default(),
        }
    }
}
