//! Supervised sweep execution: run-wide deadlines, fail-fast
//! cancellation, one retry under a tighter budget, and
//! checkpoint/resume — the robustness layer between [`crate::sweep`]'s
//! raw fan-out and the CLI.
//!
//! A supervised sweep never aborts wholesale on one bad cell. Each cell
//! ends in exactly one [`CellOutcome`]; the aggregated [`RunReport`]
//! classifies the run ([`RunClass::AllOk`] / `Partial` / `AllFailed`) so
//! callers can pick an exit code, and the optional checkpoint file makes
//! an interrupted grid resumable with only the unfinished cells re-run.

use crate::checkpoint::{scenario_hash, CellSummary, Checkpoint};
use crate::predictor::{PredictError, Prediction};
use crate::sweep::{run_cell_supervised, PrepShare, SweepScenario};
use clara_map::{RunDeadline, SolveBudget};
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Policy knobs for one supervised sweep.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Worker threads; `0` = available parallelism.
    pub threads: usize,
    /// Run-wide per-cell wall-clock budget in milliseconds. A cell's own
    /// [`crate::PredictOptions::deadline_ms`] takes precedence when set.
    pub deadline_ms: Option<u64>,
    /// Retry failed cells once, sequentially, under [`Self::retry_budget`].
    pub retry: bool,
    /// Tighter solver budget for the retry pass: a cell that failed at
    /// full effort gets one more chance to land an incumbent fast.
    pub retry_budget: SolveBudget,
    /// Cancel remaining cells after the first failure.
    pub fail_fast: bool,
    /// Write per-cell results here as they complete.
    pub checkpoint: Option<PathBuf>,
    /// Load this checkpoint first and skip cells it already covers.
    /// Also becomes the checkpoint path when [`Self::checkpoint`] is
    /// unset, so plain `--resume f` keeps extending `f`.
    pub resume: Option<PathBuf>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            threads: 0,
            deadline_ms: None,
            retry: true,
            retry_budget: SolveBudget::nodes(256),
            fail_fast: false,
            checkpoint: None,
            resume: None,
        }
    }
}

/// What a supervised cell produced.
// `Fresh` dwarfs the other variants (a Prediction now carries the
// exported warm-start seed), but it is also the overwhelmingly common
// case in a healthy sweep — boxing it would trade an allocation per
// cell for nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum CellResult {
    /// Computed this run.
    Fresh(Prediction),
    /// Restored from the resume checkpoint; numbers only, no mapping.
    Resumed(CellSummary),
    /// Failed (after any retry).
    Failed(PredictError),
    /// Never started: the run was cancelled (fail-fast) first.
    Skipped,
}

/// How a supervised cell ended, for the run report.
#[derive(Debug, Clone)]
pub enum CellOutcome {
    /// Completed with a mapping of the given quality.
    Ok { quality: String, retried: bool },
    /// Restored from the resume checkpoint.
    Resumed,
    /// Solve or simulation exceeded its deadline.
    TimedOut { retried: bool },
    /// The cell panicked; payload is the panic message.
    Panicked { payload: String, retried: bool },
    /// Any other per-cell error.
    Failed { error: String, retried: bool },
    /// Cancelled before starting (fail-fast).
    Skipped,
}

impl CellOutcome {
    fn of(result: &CellResult, retried: bool) -> Self {
        match result {
            CellResult::Fresh(p) => CellOutcome::Ok {
                quality: p.mapping.quality.to_string(),
                retried,
            },
            CellResult::Resumed(_) => CellOutcome::Resumed,
            CellResult::Failed(PredictError::TimedOut) => CellOutcome::TimedOut { retried },
            CellResult::Failed(PredictError::Panicked { payload, .. }) => CellOutcome::Panicked {
                payload: payload.clone(),
                retried,
            },
            CellResult::Failed(e) => CellOutcome::Failed {
                error: e.to_string(),
                retried,
            },
            CellResult::Skipped => CellOutcome::Skipped,
        }
    }

    /// Whether this outcome counts as a success for run classification.
    pub fn is_ok(&self) -> bool {
        matches!(self, CellOutcome::Ok { .. } | CellOutcome::Resumed)
    }
}

impl fmt::Display for CellOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let retried = |r: &bool| if *r { " (after retry)" } else { "" };
        match self {
            CellOutcome::Ok { quality, retried: r } => write!(f, "ok [{quality}]{}", retried(r)),
            CellOutcome::Resumed => write!(f, "resumed from checkpoint"),
            CellOutcome::TimedOut { retried: r } => write!(f, "timed out{}", retried(r)),
            CellOutcome::Panicked { payload, retried: r } => {
                write!(f, "panicked: {payload}{}", retried(r))
            }
            CellOutcome::Failed { error, retried: r } => write!(f, "failed: {error}{}", retried(r)),
            CellOutcome::Skipped => write!(f, "skipped (run cancelled)"),
        }
    }
}

/// One row of the run report.
#[derive(Debug, Clone)]
pub struct CellReport {
    /// The cell's label.
    pub label: String,
    /// How it ended.
    pub outcome: CellOutcome,
    /// Compact telemetry summary (solver counters, and simulator
    /// counters when the run collected them). `None` for cells with no
    /// fresh computation (resumed, skipped, failed before solving).
    pub telemetry: Option<String>,
}

/// Aggregated fate of every cell in a supervised run.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Per-cell outcomes, in input order (plus any externally
    /// [`RunReport::record`]ed rows).
    pub cells: Vec<CellReport>,
}

/// Coarse classification of a run, for exit codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunClass {
    /// Every cell succeeded (or the run was empty).
    AllOk,
    /// Some cells succeeded, some failed.
    Partial,
    /// Every cell failed.
    AllFailed,
}

impl RunReport {
    /// Append an externally observed outcome (e.g. a simulator-watchdog
    /// failure from a stage outside the sweep itself).
    pub fn record(&mut self, label: &str, outcome: CellOutcome) {
        self.record_with_telemetry(label, outcome, None);
    }

    /// [`RunReport::record`] with a telemetry summary attached.
    pub fn record_with_telemetry(
        &mut self,
        label: &str,
        outcome: CellOutcome,
        telemetry: Option<String>,
    ) {
        self.cells.push(CellReport { label: label.to_string(), outcome, telemetry });
    }

    /// Number of successful cells (fresh or resumed).
    pub fn ok_count(&self) -> usize {
        self.cells.iter().filter(|c| c.outcome.is_ok()).count()
    }

    /// Number of failed cells (including skipped).
    pub fn failed_count(&self) -> usize {
        self.cells.len() - self.ok_count()
    }

    /// Classify the run. Skipped cells count as failures: a fail-fast
    /// run that cancelled half the grid is not "all ok".
    pub fn class(&self) -> RunClass {
        match (self.ok_count(), self.failed_count()) {
            (_, 0) => RunClass::AllOk,
            (0, _) => RunClass::AllFailed,
            _ => RunClass::Partial,
        }
    }
}

/// The outcome of [`run_sweep_supervised`].
#[derive(Debug)]
pub struct SupervisedSweep {
    /// Per-cell results, in input order.
    pub results: Vec<CellResult>,
    /// Per-cell outcomes and run classification.
    pub report: RunReport,
}

/// Failures of the supervision machinery itself (never of a cell).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SupervisorError {
    /// The final checkpoint write failed; per-cell results were still
    /// computed but are not persisted.
    Checkpoint(String),
}

impl fmt::Display for SupervisorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SupervisorError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
        }
    }
}

impl std::error::Error for SupervisorError {}

/// Run a sweep under supervision: panic isolation (inherited from the
/// cell runner), per-cell deadlines with a fail-fast cancel token, one
/// sequential retry of failed cells under a tighter budget, and
/// checkpoint/resume.
///
/// Healthy cells produce results bit-identical to [`crate::run_sweep`]:
/// supervision only adds policy around the same pure computation.
pub fn run_sweep_supervised(
    scenarios: &[SweepScenario<'_>],
    config: &SupervisorConfig,
) -> Result<SupervisedSweep, SupervisorError> {
    let ck_path = config.checkpoint.clone().or_else(|| config.resume.clone());
    let restored = match &config.resume {
        Some(path) => Checkpoint::load(path),
        None => Checkpoint::new(),
    };
    let hashes: Vec<u64> = scenarios.iter().map(scenario_hash).collect();
    let checkpoint = Mutex::new(restored.clone());

    let threads = match config.threads {
        0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        n => n,
    };
    let cancel = Arc::new(AtomicBool::new(false));
    let share = PrepShare::build(scenarios);

    // First pass: parallel, mirrors `run_sweep`'s counter + slots scheme.
    // Restored cells are claimed like any other but resolved instantly.
    let next = AtomicUsize::new(0);
    let slots: Vec<OnceLock<CellResult>> =
        (0..scenarios.len()).map(|_| OnceLock::new()).collect();
    let run_one = |i: usize| -> CellResult {
        if let Some(summary) = restored.get(hashes[i]) {
            return CellResult::Resumed(summary.clone());
        }
        if cancel.load(Ordering::Relaxed) {
            return CellResult::Skipped;
        }
        let eff = scenarios[i].options.deadline_ms.or(config.deadline_ms);
        let deadline = RunDeadline::within_ms(eff).with_cancel(Arc::clone(&cancel));
        match run_cell_supervised(scenarios, &share, i, &deadline) {
            Ok(p) => {
                checkpoint_cell(&checkpoint, &ck_path, hashes[i], &scenarios[i].label, &p);
                CellResult::Fresh(p)
            }
            Err(PredictError::Cancelled) => CellResult::Skipped,
            Err(e) => {
                if config.fail_fast {
                    cancel.store(true, Ordering::Relaxed);
                }
                CellResult::Failed(e)
            }
        }
    };
    if threads <= 1 || scenarios.len() <= 1 {
        for (i, slot) in slots.iter().enumerate() {
            let _ = slot.set(run_one(i));
        }
    } else {
        std::thread::scope(|s| {
            for _ in 0..threads.min(scenarios.len()) {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= scenarios.len() {
                        break;
                    }
                    let _ = slots[i].set(run_one(i));
                });
            }
        });
    }
    let mut results: Vec<CellResult> = slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            // An empty slot means a worker died without reporting
            // (unreachable today — cells are panic-isolated).
            // Attribute, don't abort.
            slot.into_inner()
                .unwrap_or(CellResult::Failed(PredictError::Lost { cell: i }))
        })
        .collect();

    // Retry pass: sequential, one attempt per failed cell, tighter
    // budget, fresh deadline, no cancel token. Cancelled/skipped cells
    // are not retried — the user asked the run to stop.
    let mut retried = vec![false; scenarios.len()];
    if config.retry {
        for i in 0..scenarios.len() {
            if !matches!(results[i], CellResult::Failed(_)) {
                continue;
            }
            retried[i] = true;
            let mut sc = scenarios[i].clone();
            sc.options.budget = config.retry_budget;
            let retry_scenarios = [sc];
            let retry_share = PrepShare::build(&retry_scenarios);
            let eff = retry_scenarios[0].options.deadline_ms.or(config.deadline_ms);
            let deadline = RunDeadline::within_ms(eff);
            match run_cell_supervised(&retry_scenarios, &retry_share, 0, &deadline) {
                Ok(p) => {
                    checkpoint_cell(&checkpoint, &ck_path, hashes[i], &scenarios[i].label, &p);
                    results[i] = CellResult::Fresh(p);
                }
                Err(PredictError::Panicked { payload, .. }) => {
                    // Re-attribute to the cell's index in the original
                    // grid, not the 1-element retry grid.
                    results[i] =
                        CellResult::Failed(PredictError::Panicked { cell: i, payload });
                }
                Err(e) => results[i] = CellResult::Failed(e),
            }
        }
    }

    let report = RunReport {
        cells: scenarios
            .iter()
            .zip(&results)
            .zip(&retried)
            .map(|((sc, res), &r)| CellReport {
                label: sc.label.clone(),
                outcome: CellOutcome::of(res, r),
                telemetry: match res {
                    CellResult::Fresh(p) => Some(p.mapping.stats.summary()),
                    _ => None,
                },
            })
            .collect(),
    };

    // Final checkpoint write is authoritative: per-cell saves above are
    // best-effort, but a failure here means resume would lose work.
    if let Some(path) = &ck_path {
        let ck = checkpoint.lock().unwrap_or_else(|p| p.into_inner());
        if !ck.is_empty() || path.exists() {
            ck.save_atomic(path).map_err(SupervisorError::Checkpoint)?;
        }
    }

    Ok(SupervisedSweep { results, report })
}

/// Record a completed cell and write the checkpoint through, best-effort
/// (mid-run persistence; the final save reports errors).
fn checkpoint_cell(
    checkpoint: &Mutex<Checkpoint>,
    path: &Option<PathBuf>,
    hash: u64,
    label: &str,
    p: &Prediction,
) {
    if path.is_none() {
        return;
    }
    let mut ck = checkpoint.lock().unwrap_or_else(|e| e.into_inner());
    ck.insert(CellSummary::of(hash, label, p));
    if let Some(path) = path {
        let _ = ck.save_atomic(path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::PredictOptions;
    use clara_cir::{lower, CirModule};
    use clara_lang::frontend;
    use clara_lnic::profiles;
    use clara_microbench::{extract_parameters, NicParameters};
    use clara_workload::WorkloadProfile;

    fn params() -> &'static NicParameters {
        static P: OnceLock<NicParameters> = OnceLock::new();
        P.get_or_init(|| extract_parameters(&profiles::netronome_agilio_cx40()))
    }

    fn module() -> CirModule {
        let src = r#"nf nat {
            state flow_table: map<u64, u64>[65536];
            fn handle(pkt: packet) -> action {
                dpdk.parse_headers(pkt);
                let entry: u64 = flow_table.lookup(hash(pkt.src_ip, pkt.src_port));
                let ck: u16 = checksum(pkt);
                return forward;
            } }"#;
        lower(&frontend(src).unwrap()).unwrap()
    }

    fn grid<'a>(module: &'a CirModule, params: &'a NicParameters) -> Vec<SweepScenario<'a>> {
        [50_000.0, 150_000.0, 400_000.0, 800_000.0]
            .iter()
            .map(|&rate| SweepScenario {
                label: format!("rate={rate}"),
                module,
                params,
                workload: WorkloadProfile { rate_pps: rate, ..WorkloadProfile::paper_default() },
                options: PredictOptions::default(),
            })
            .collect()
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("clara-supervisor-{name}-{}.json", std::process::id()))
    }

    #[test]
    fn healthy_run_is_all_ok_and_bit_identical_to_plain_sweep() {
        let m = module();
        let p = params();
        let scenarios = grid(&m, p);
        let plain = crate::run_sweep(&scenarios, 1);
        let sup = run_sweep_supervised(&scenarios, &SupervisorConfig::default()).unwrap();
        assert_eq!(sup.report.class(), RunClass::AllOk);
        for (a, b) in plain.iter().zip(&sup.results) {
            let a = a.as_ref().unwrap();
            let CellResult::Fresh(b) = b else { panic!("expected Fresh, got {b:?}") };
            assert_eq!(a.avg_latency_cycles.to_bits(), b.avg_latency_cycles.to_bits());
            assert_eq!(a.throughput_pps.to_bits(), b.throughput_pps.to_bits());
        }
    }

    #[test]
    fn panicking_cell_yields_partial_run_and_distinct_outcome() {
        let m = module();
        let p = params();
        let mut scenarios = grid(&m, p);
        scenarios[1].options.inject_panic = true;
        let sup = run_sweep_supervised(&scenarios, &SupervisorConfig::default()).unwrap();
        assert_eq!(sup.report.class(), RunClass::Partial);
        match &sup.report.cells[1].outcome {
            CellOutcome::Panicked { payload, retried } => {
                assert!(payload.contains("injected panic"));
                assert!(*retried, "panicking cell should have been retried once");
            }
            other => panic!("expected Panicked, got {other}"),
        }
        assert!(sup.report.cells[0].outcome.is_ok());
        assert!(sup.report.cells[2].outcome.is_ok());
    }

    #[test]
    fn zero_deadline_times_out_distinctly() {
        let m = module();
        let p = params();
        let mut scenarios = grid(&m, p);
        scenarios[2].options.deadline_ms = Some(0);
        let config = SupervisorConfig { retry: false, ..SupervisorConfig::default() };
        let sup = run_sweep_supervised(&scenarios, &config).unwrap();
        assert!(matches!(
            sup.report.cells[2].outcome,
            CellOutcome::TimedOut { retried: false }
        ));
        assert_eq!(sup.report.class(), RunClass::Partial);
    }

    #[test]
    fn retried_failure_that_fails_again_stays_failed_and_marked_retried() {
        let m = module();
        let p = params();
        let mut scenarios = grid(&m, p);
        // A cell-level zero deadline binds the retry too (the cell's
        // own options always win), so this cell fails twice — the
        // report must say both "timed out" and "retried".
        scenarios[2].options.deadline_ms = Some(0);
        let sup = run_sweep_supervised(&scenarios, &SupervisorConfig::default()).unwrap();
        assert!(matches!(
            sup.report.cells[2].outcome,
            CellOutcome::TimedOut { retried: true }
        ));
    }

    #[test]
    fn fail_fast_skips_remaining_cells() {
        let m = module();
        let p = params();
        let mut scenarios = grid(&m, p);
        scenarios[0].options.inject_panic = true;
        let config = SupervisorConfig {
            threads: 1,
            fail_fast: true,
            retry: false,
            ..SupervisorConfig::default()
        };
        let sup = run_sweep_supervised(&scenarios, &config).unwrap();
        assert!(matches!(sup.report.cells[0].outcome, CellOutcome::Panicked { .. }));
        let skipped = sup
            .report
            .cells
            .iter()
            .filter(|c| matches!(c.outcome, CellOutcome::Skipped))
            .count();
        assert_eq!(skipped, 3, "fail-fast must cancel every cell after the failure");
        assert_eq!(sup.report.class(), RunClass::AllFailed);
    }

    #[test]
    fn checkpoint_then_resume_skips_finished_cells() {
        let m = module();
        let p = params();
        let path = tmp("resume");
        let _ = std::fs::remove_file(&path);

        // First run: one cell fails, three checkpoint.
        let mut scenarios = grid(&m, p);
        scenarios[1].options.inject_panic = true;
        let config = SupervisorConfig {
            checkpoint: Some(path.clone()),
            retry: false,
            ..SupervisorConfig::default()
        };
        let first = run_sweep_supervised(&scenarios, &config).unwrap();
        assert_eq!(first.report.class(), RunClass::Partial);

        // Second run: same grid, panic hook removed, resuming. The three
        // healthy cells restore; only cell 1 computes fresh.
        let scenarios = grid(&m, p);
        let config = SupervisorConfig {
            resume: Some(path.clone()),
            retry: false,
            ..SupervisorConfig::default()
        };
        let second = run_sweep_supervised(&scenarios, &config).unwrap();
        assert_eq!(second.report.class(), RunClass::AllOk);
        let resumed = second
            .results
            .iter()
            .filter(|r| matches!(r, CellResult::Resumed(_)))
            .count();
        let fresh = second
            .results
            .iter()
            .filter(|r| matches!(r, CellResult::Fresh(_)))
            .count();
        assert_eq!((resumed, fresh), (3, 1));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn hash_mismatch_forces_recompute() {
        let m = module();
        let p = params();
        let path = tmp("stale");
        let _ = std::fs::remove_file(&path);

        let scenarios = grid(&m, p);
        let config =
            SupervisorConfig { checkpoint: Some(path.clone()), ..SupervisorConfig::default() };
        run_sweep_supervised(&scenarios, &config).unwrap();

        // Change one cell's workload: its hash moves, so resume must
        // recompute it while the others restore.
        let mut scenarios = grid(&m, p);
        scenarios[3].workload.rate_pps *= 2.0;
        let config = SupervisorConfig { resume: Some(path.clone()), ..SupervisorConfig::default() };
        let again = run_sweep_supervised(&scenarios, &config).unwrap();
        assert!(matches!(again.results[3], CellResult::Fresh(_)));
        assert!(matches!(again.results[0], CellResult::Resumed(_)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_run_classifies_all_ok() {
        let report = RunReport::default();
        assert_eq!(report.class(), RunClass::AllOk);
    }

    #[test]
    fn record_folds_external_failures_into_class() {
        let mut report = RunReport::default();
        report.record("sim", CellOutcome::Ok { quality: "optimal".into(), retried: false });
        assert_eq!(report.class(), RunClass::AllOk);
        report.record(
            "sim-adversarial",
            CellOutcome::Failed { error: "watchdog".into(), retried: false },
        );
        assert_eq!(report.class(), RunClass::Partial);
    }
}
