//! Performance prediction (§3.5 of the Clara paper).
//!
//! Given a lowered NF ([`clara_cir::CirModule`]), measured NIC parameters
//! ([`clara_microbench::NicParameters`]), and a workload description
//! ([`clara_workload::WorkloadProfile`]), this crate produces the
//! performance profile the paper describes: per-packet-type latency
//! predictions, an average, an idealized throughput estimate, and an
//! energy estimate — plus the §3.5/§6 extensions (interference via LNIC
//! slicing, partial offloading across PCIe).
//!
//! The pipeline:
//!
//! 1. **Packet classes.** The workload is decomposed into classes (TCP
//!    SYN / established TCP / UDP), mirroring the paper's example output
//!    ("TCP SYN packets experience higher latency, but the following
//!    packets will hit the flow cache"). Each class is *simulated through
//!    the CIR interpreter* on representative packets to find how packets
//!    of that class traverse the NF — which blocks execute, how many loop
//!    iterations run.
//! 2. **Cache analysis.** Expected cache-hit ratios per (state, region)
//!    come from the workload's flow count and Zipf skew versus measured
//!    cache capacities (the hot-flow mass that fits is the hit ratio).
//! 3. **Mapping.** The ILP of `clara-map` picks units and placements.
//! 4. **Pricing.** Each class re-prices the mapping with its own payload
//!    size, adds payload-spill corrections and M/D/1-style queueing
//!    delays at accelerators and the thread pool, and the class mix
//!    yields the average.

pub mod cache;
pub mod checkpoint;
pub mod classes;
pub mod interfere;
pub mod partial;
pub mod predictor;
pub mod queueing;
pub mod session;
pub mod supervisor;
pub mod sweep;
pub mod validate;

pub use cache::{fc_hit_ratio, state_hit_matrix};
pub use checkpoint::{scenario_hash, CellSummary, Checkpoint};
pub use classes::{enumerate_classes, PacketClass};
pub use interfere::{predict_sliced, SliceSpec};
pub use partial::{predict_partial, HostParams, PartialPlan};
pub use clara_map::{MappingQuality, RunDeadline, SolveBudget, SolverConfig};
pub use clara_telemetry::{Sink, SimStats, SolveStats, TelemetryReport};
pub use predictor::{
    predict, predict_with_options, predict_with_sink, ClassPrediction, PredictError,
    PredictOptions, Prediction,
};
pub use queueing::{accel_wait, pool_wait};
pub use session::{ClassKey, NfSession, SessionBuildError, SessionStats};
pub use supervisor::{
    run_sweep_supervised, CellOutcome, CellReport, CellResult, RunClass, RunReport,
    SupervisedSweep, SupervisorConfig, SupervisorError,
};
pub use sweep::{run_sweep, SweepScenario};
pub use validate::{
    run_validation_sweep, validation_grid, ErrorSummary, ValidationCell, ValidationConfig,
    ValidationResult, ValidationSweep,
};
