//! Interference between co-resident NFs via LNIC slicing (§3.5).
//!
//! "As a starting point, Clara could slice the LNIC to model, for
//! instance, 'half' of the NIC." A slice scales the thread pool and the
//! cache capacities (cache contention: a co-resident NF leaves footprints
//! in shared caches), then predicts against the sliced parameters.

use crate::predictor::{predict, PredictError, Prediction};
use clara_cir::CirModule;
use clara_microbench::NicParameters;
use clara_workload::WorkloadProfile;

/// How much of the NIC one tenant receives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SliceSpec {
    /// Fraction of NPU threads available (0, 1].
    pub thread_frac: f64,
    /// Fraction of shared cache capacity effectively available (0, 1] —
    /// the co-resident NF's working set pollutes the rest.
    pub cache_frac: f64,
}

impl SliceSpec {
    /// An even two-tenant split.
    pub fn half() -> Self {
        SliceSpec { thread_frac: 0.5, cache_frac: 0.5 }
    }
}

/// Parameters as seen from inside a slice.
pub fn sliced_params(params: &NicParameters, slice: SliceSpec) -> NicParameters {
    assert!(slice.thread_frac > 0.0 && slice.thread_frac <= 1.0);
    assert!(slice.cache_frac > 0.0 && slice.cache_frac <= 1.0);
    let mut p = params.clone();
    p.total_threads = ((p.total_threads as f64 * slice.thread_frac).floor() as usize).max(1);
    for m in &mut p.mems {
        if let Some(c) = &mut m.cache {
            c.capacity *= slice.cache_frac;
        }
    }
    if p.flow_cache_entries.is_finite() {
        p.flow_cache_entries *= slice.cache_frac;
    }
    p
}

/// Predict `module` running inside a slice of the NIC.
pub fn predict_sliced(
    module: &CirModule,
    params: &NicParameters,
    workload: &WorkloadProfile,
    slice: SliceSpec,
) -> Result<Prediction, PredictError> {
    predict(module, &sliced_params(params, slice), workload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clara_lnic::profiles;
    use clara_microbench::extract_parameters;
    use std::sync::OnceLock;

    fn params() -> &'static NicParameters {
        static P: OnceLock<NicParameters> = OnceLock::new();
        P.get_or_init(|| extract_parameters(&profiles::netronome_agilio_cx40()))
    }

    fn module(src: &str) -> CirModule {
        clara_cir::lower(&clara_lang::frontend(src).unwrap()).unwrap()
    }

    #[test]
    fn slicing_scales_threads_and_caches() {
        let p = params();
        let s = sliced_params(p, SliceSpec::half());
        assert_eq!(s.total_threads, p.total_threads / 2);
        let full_cache = p.mems.iter().find_map(|m| m.cache.as_ref()).unwrap();
        let half_cache = s.mems.iter().find_map(|m| m.cache.as_ref()).unwrap();
        assert!((half_cache.capacity - full_cache.capacity / 2.0).abs() < 1.0);
        assert!((s.flow_cache_entries - p.flow_cache_entries / 2.0).abs() < 1.0);
    }

    #[test]
    fn cache_contention_slows_memory_bound_nf() {
        // A firewall with a large table: halving the cache lowers hit
        // ratios and raises latency.
        let src = r#"nf fw {
            state conns: map<u64, u64>[1000000];
            fn handle(pkt: packet) -> action {
                let v: u64 = conns.lookup(hash(pkt.src_ip, pkt.dst_ip));
                if (v == 0) { return drop; }
                return forward;
            } }"#;
        let m = module(src);
        let wl = WorkloadProfile { flows: 120_000, ..WorkloadProfile::paper_default() };
        let solo = predict(&m, params(), &wl).unwrap();
        let shared = predict_sliced(&m, params(), &wl, SliceSpec::half()).unwrap();
        assert!(
            shared.avg_latency_cycles > solo.avg_latency_cycles * 1.03,
            "solo {} shared {}",
            solo.avg_latency_cycles,
            shared.avg_latency_cycles
        );
    }

    #[test]
    fn thread_slicing_cuts_throughput() {
        let src = r#"nf cpu {
            fn handle(pkt: packet) -> action {
                let acc: u64 = 0;
                for i in 0..64 { acc = acc + i * i; }
                if (acc == 0) { return drop; }
                return forward;
            } }"#;
        let m = module(src);
        let wl = WorkloadProfile::paper_default();
        let solo = predict(&m, params(), &wl).unwrap();
        let shared = predict_sliced(&m, params(), &wl, SliceSpec::half()).unwrap();
        assert!(
            shared.throughput_pps < solo.throughput_pps * 0.6,
            "solo {} shared {}",
            solo.throughput_pps,
            shared.throughput_pps
        );
    }

    #[test]
    #[should_panic]
    fn zero_slice_rejected() {
        sliced_params(params(), SliceSpec { thread_frac: 0.0, cache_frac: 0.5 });
    }
}
