//! Queueing-delay terms for the latency prediction.
//!
//! Accelerators are modelled as M/D/1 servers (deterministic service —
//! the NPUs "do not perform out-of-order execution, so they have stable
//! performance parameters", §4), and the NPU thread pool as an M/D/c
//! approximated by scaling the single-server wait by the Erlang-like
//! `ρ^{√(2(c+1))}` heuristic (Sakasegawa), which vanishes for the large
//! thread counts of real SmartNICs until the pool approaches saturation.

/// Expected M/D/1 waiting time, in the same unit as `service`.
///
/// `rho` is the utilization; at `rho ≥ 1` the wait is effectively
/// unbounded and a large finite penalty is returned so optimization and
/// reporting stay numeric.
pub fn accel_wait(service: f64, rho: f64) -> f64 {
    if service <= 0.0 || rho <= 0.0 {
        return 0.0;
    }
    if rho >= 0.99 {
        return service * 50.0;
    }
    // M/D/1: Wq = ρ·s / (2(1−ρ)).
    rho * service / (2.0 * (1.0 - rho))
}

/// Expected waiting time in a `c`-server pool at utilization `rho`,
/// Sakasegawa's approximation: `Wq(M/M/c) ≈ ρ^{√(2(c+1))−1}·s /
/// (c(1−ρ))`, halved for deterministic service.
pub fn pool_wait(service: f64, rho: f64, servers: usize) -> f64 {
    if service <= 0.0 || rho <= 0.0 || servers == 0 {
        return 0.0;
    }
    if rho >= 0.99 {
        return service * 50.0;
    }
    let c = servers as f64;
    let exponent = (2.0 * (c + 1.0)).sqrt() - 1.0;
    0.5 * rho.powf(exponent) * service / (c * (1.0 - rho))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_wait_when_idle() {
        assert_eq!(accel_wait(100.0, 0.0), 0.0);
        assert_eq!(pool_wait(100.0, 0.0, 8), 0.0);
    }

    #[test]
    fn wait_grows_with_utilization() {
        let low = accel_wait(100.0, 0.2);
        let high = accel_wait(100.0, 0.8);
        assert!(high > 10.0 * low, "low {low} high {high}");
        // M/D/1 at rho=0.5: 0.5*100/(2*0.5) = 50.
        assert!((accel_wait(100.0, 0.5) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn saturation_capped_but_large() {
        let w = accel_wait(100.0, 1.5);
        assert_eq!(w, 5000.0);
        assert_eq!(pool_wait(100.0, 1.2, 4), 5000.0);
    }

    #[test]
    fn large_pools_wait_less() {
        let small = pool_wait(1000.0, 0.7, 2);
        let large = pool_wait(1000.0, 0.7, 384);
        assert!(large < small / 100.0, "small {small} large {large}");
        // A 384-thread pool at 70% utilization has essentially no queue.
        assert!(large < 1e-3, "large-pool wait {large}");
    }

    #[test]
    fn pool_of_one_close_to_mdone() {
        // c = 1: exponent = 1, wait = 0.5·ρ·s/(1−ρ) = M/D/1 exactly.
        let md1 = accel_wait(200.0, 0.6);
        let pool = pool_wait(200.0, 0.6, 1);
        assert!((md1 - pool).abs() < 1e-9, "md1 {md1} pool {pool}");
    }
}
