//! Partial offloading: splitting an NF between the SmartNIC and host
//! CPUs (§6).
//!
//! "Capturing partial offloading performance requires reasoning about the
//! host/NIC interconnect (e.g., PCIe)." The model: the dataflow graph is
//! cut at a prefix boundary (nodes before the cut run on the NIC, the
//! rest on the host); packets crossing the cut pay a PCIe traversal, and
//! host nodes are priced with a conventional x86-like cost model.

use crate::cache::{fc_hit_ratio, state_hit_matrix};
use crate::classes::enumerate_classes;
use crate::predictor::{predict, state_specs, PredictError};
use clara_cir::CirModule;
use clara_dataflow::{extract, DfNode};
use clara_map::{node_compute_cost, state_access_cost, CostCtx};
use clara_microbench::NicParameters;
use clara_workload::WorkloadProfile;

/// Host-side execution parameters (a modern x86 server core).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostParams {
    /// Core clock in GHz.
    pub freq_ghz: f64,
    /// Cycles per ALU-class operation.
    pub alu: f64,
    /// Cycles per table access (DRAM with a large LLC blended in).
    pub table_access: f64,
    /// Cycles per payload byte for streaming work (checksum/DPI).
    pub stream_per_byte: f64,
    /// One-way PCIe crossing in nanoseconds (DMA + doorbell).
    pub pcie_ns: f64,
}

impl Default for HostParams {
    fn default() -> Self {
        HostParams {
            freq_ghz: 3.4, // the paper's testbed: Xeon E5-2643 @ 3.40 GHz
            alu: 0.5,      // superscalar x86
            table_access: 90.0,
            stream_per_byte: 0.08,
            pcie_ns: 600.0,
        }
    }
}

/// One candidate split and its predicted latency.
#[derive(Debug, Clone)]
pub struct PartialPlan {
    /// Nodes `0..cut` run on the NIC; `cut..` on the host. `cut = n`
    /// means full offload, `cut = 0` means everything on the host.
    pub cut: usize,
    /// Predicted per-packet latency in nanoseconds (cycles don't compare
    /// across clock domains).
    pub latency_ns: f64,
    /// Whether the packet crosses PCIe.
    pub crosses_pcie: bool,
}

/// Evaluate every prefix cut of the dataflow graph and return the plans
/// sorted by cut position (full offload last).
pub fn predict_partial(
    module: &CirModule,
    params: &NicParameters,
    workload: &WorkloadProfile,
    host: HostParams,
) -> Result<Vec<PartialPlan>, PredictError> {
    let full = predict(module, params, workload)?;
    let graph = extract(module);
    let classes = enumerate_classes(module, workload);
    let states = state_specs(module);
    let state_hit = state_hit_matrix(&states, params, workload);
    let fc_hit = fc_hit_ratio(params, workload);

    // Class-averaged node weights.
    let weights: Vec<f64> = graph
        .nodes
        .iter()
        .map(|node| {
            classes
                .iter()
                .map(|c| {
                    c.share
                        * node
                            .blocks
                            .iter()
                            .map(|b| c.block_weights.get(b.0 as usize).copied().unwrap_or(0.0))
                            .fold(0.0, f64::max)
                })
                .sum()
        })
        .collect();

    let ctx = CostCtx {
        params,
        payload: workload.avg_payload,
        state_hit: &state_hit,
        fc_hit,
        dpi_hit: 0.2,
    };
    // Per-node NIC cost under the full mapping (ns).
    let nic_ns: Vec<f64> = graph
        .nodes
        .iter()
        .enumerate()
        .map(|(i, node)| {
            let unit = full.mapping.node_unit[i];
            let mut cycles = node_compute_cost(node, unit, &ctx);
            for state in node.touched_states() {
                let s = state.0 as usize;
                cycles +=
                    state_access_cost(node, s, full.mapping.state_mem[s], unit, &states, &ctx);
            }
            weights[i] * cycles / params.freq_ghz
        })
        .collect();
    // Per-node host cost (ns).
    let host_ns: Vec<f64> = graph
        .nodes
        .iter()
        .enumerate()
        .map(|(i, node)| weights[i] * host_node_cycles(node, workload.avg_payload, &host) / host.freq_ghz)
        .collect();

    let hub_ns = params.hub_overhead / params.freq_ghz;
    let n = graph.nodes.len();
    let mut plans = Vec::with_capacity(n + 1);
    for cut in 0..=n {
        let nic_part: f64 = nic_ns[..cut].iter().sum();
        let host_part: f64 = host_ns[cut..].iter().sum();
        let crosses = cut > 0 && cut < n;
        // Everything on host still crosses PCIe once (NIC -> host RX);
        // full offload never does.
        let crossings = if cut == n { 0.0 } else { 1.0 };
        plans.push(PartialPlan {
            cut,
            latency_ns: hub_ns + nic_part + host_part + crossings * host.pcie_ns,
            crosses_pcie: crosses || cut == 0,
        });
    }
    Ok(plans)
}

/// The plan with the lowest latency.
pub fn best_plan(plans: &[PartialPlan]) -> &PartialPlan {
    plans
        .iter()
        .min_by(|a, b| a.latency_ns.partial_cmp(&b.latency_ns).unwrap_or(std::cmp::Ordering::Equal))
        .expect("at least the trivial cuts exist")
}

fn host_node_cycles(node: &DfNode, payload: f64, host: &HostParams) -> f64 {
    use clara_cir::VCall;
    let ops = &node.ops;
    let mut cycles = (ops.alu + ops.branch + ops.metadata_reads + ops.metadata_writes) as f64
        * host.alu
        + ops.mul as f64 * host.alu * 2.0
        + ops.div as f64 * host.alu * 20.0
        + ops.hash as f64 * 8.0
        + ops.payload_bytes as f64 * host.stream_per_byte
        + ops.float as f64 * host.alu; // host cores have FPUs
    for (call, count) in &node.vcalls {
        let n = *count as f64;
        cycles += n * match call {
            VCall::ParseHeader => 25.0,
            VCall::ChecksumFull => host.stream_per_byte * (payload + 54.0) + 20.0,
            VCall::ChecksumIncr => 4.0,
            VCall::Crypto => payload * 0.6, // AES-NI
            VCall::PayloadScan => payload * (host.stream_per_byte + 3.0),
            VCall::Meter => 10.0,
            VCall::TableLookup(_)
            | VCall::TableWrite(_)
            | VCall::CounterAdd(_)
            | VCall::CounterRead(_)
            | VCall::ArrayRead(_)
            | VCall::ArrayWrite(_) => host.table_access,
            VCall::LpmLookup(_) => host.table_access * 2.0, // trie walk
            _ => 0.0,
        };
    }
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use clara_lnic::profiles;
    use clara_microbench::extract_parameters;
    use std::sync::OnceLock;

    fn params() -> &'static NicParameters {
        static P: OnceLock<NicParameters> = OnceLock::new();
        P.get_or_init(|| extract_parameters(&profiles::netronome_agilio_cx40()))
    }

    fn module(src: &str) -> CirModule {
        clara_cir::lower(&clara_lang::frontend(src).unwrap()).unwrap()
    }

    #[test]
    fn plans_cover_all_cuts() {
        let m = module(
            "nf t { state c: counter[64];
              fn handle(pkt: packet) -> action {
                dpdk.parse_headers(pkt);
                c.add(pkt.src_ip % 64, 1);
                return forward; } }",
        );
        let plans =
            predict_partial(&m, params(), &WorkloadProfile::paper_default(), HostParams::default())
                .unwrap();
        let graph = extract(&m);
        assert_eq!(plans.len(), graph.nodes.len() + 1);
        assert!(!plans.last().unwrap().crosses_pcie); // full offload
    }

    #[test]
    fn cheap_nf_prefers_full_offload() {
        // A trivial NF: the PCIe crossing dominates, keep it on the NIC.
        let m = module(
            "nf t { fn handle(pkt: packet) -> action {
                pkt.decrement_ttl();
                return forward; } }",
        );
        let plans =
            predict_partial(&m, params(), &WorkloadProfile::paper_default(), HostParams::default())
                .unwrap();
        let best = best_plan(&plans);
        let graph = extract(&m);
        assert_eq!(best.cut, graph.nodes.len(), "expected full offload");
    }

    #[test]
    fn compute_heavy_tail_prefers_host() {
        // Heavy per-byte scanning runs ~10x faster on the host cores; a
        // long DPI tail should be cut off the NIC despite PCIe.
        let m = module(
            "nf dpi { fn handle(pkt: packet) -> action {
                dpdk.parse_headers(pkt);
                let h: u64 = payload_scan(pkt, 7);
                if (h > 0) { return drop; }
                return forward; } }",
        );
        let wl = WorkloadProfile {
            avg_payload: 1400.0,
            max_payload: 1400,
            ..WorkloadProfile::paper_default()
        };
        let plans = predict_partial(&m, params(), &wl, HostParams::default()).unwrap();
        let best = best_plan(&plans);
        let graph = extract(&m);
        assert!(best.cut < graph.nodes.len(), "expected a partial split");
        // And the split must beat both extremes clearly.
        let full = plans.last().unwrap().latency_ns;
        assert!(best.latency_ns < full, "split {} full {full}", best.latency_ns);
    }
}
