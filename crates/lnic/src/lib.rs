//! The logical SmartNIC model (LNIC) — §3.1–3.2 of the Clara paper.
//!
//! An LNIC is a graph ⟨V, E⟩. Nodes are typed: *compute units* (header
//! engines, general-purpose cores, domain-specific accelerators), *memory
//! regions* (with sizes and access latencies that depend on where the
//! access is issued — NUMA), and *switching hubs* (embedded NIC switches /
//! traffic managers with queues). Edges are memory buses (`c↔m`, weighted
//! for NUMA), memory-hierarchy links (`m↔M`), unidirectional pipeline
//! edges between compute units (`c1→c2`), and hub links carrying queues.
//!
//! The model "skeleton" is annotated with two kinds of parameters (§3.2):
//! *architectural* (memory sizes, degrees of parallelism, queue
//! capacities) and *performance* (access latencies, per-instruction
//! cycles, accelerator throughput). Built-in profiles live in
//! [`profiles`]; the primary one models a Netronome Agilio CX 40 GbE —
//! NPU islands with Cluster Target Memory (CTM), IMEM/EMEM outside the
//! islands, checksum and crypto accelerators, and a distributed switch
//! fabric — using the parameter values the paper reports.
//!
//! # Example
//!
//! ```
//! use clara_lnic::profiles;
//!
//! let nic = profiles::netronome_agilio_cx40();
//! assert!(nic.validate().is_ok());
//! let npu = nic.units_of_class(clara_lnic::ComputeClass::GeneralCore)[0];
//! let emem = nic.memory_named("emem").unwrap();
//! // Issuing an EMEM access from an NPU pays the region latency plus the
//! // NUMA edge weight.
//! assert!(nic.access_latency(npu, emem) >= 500);
//! ```

pub mod cost;
pub mod model;
pub mod profiles;

pub use cost::{AccelCost, CostModel};
pub use model::{
    AccelKind, CacheParams, ComputeClass, ComputeUnit, Edge, EdgeKind, HubId, Lnic, LnicError,
    MemId, MemKind, MemoryRegion, QueueDiscipline, SwitchingHub, UnitId,
};
