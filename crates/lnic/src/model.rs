//! LNIC graph types: nodes (compute units, memory regions, switching
//! hubs), edges, and the validated [`Lnic`] container.

use crate::cost::CostModel;
use core::fmt;

/// Index of a compute unit within an [`Lnic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UnitId(pub usize);

/// Index of a memory region within an [`Lnic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MemId(pub usize);

/// Index of a switching hub within an [`Lnic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HubId(pub usize);

/// Kinds of domain-specific accelerators found on SmartNICs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccelKind {
    /// Checksum offload engine (e.g. at ingress, where packet data is
    /// immediately available).
    Checksum,
    /// Crypto engine (AES, etc.).
    Crypto,
    /// Hardware-accelerated exact-match table — Netronome's "flow cache"
    /// SRAM table.
    FlowCache,
    /// Longest-prefix-match engine.
    Lpm,
}

impl fmt::Display for AccelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccelKind::Checksum => write!(f, "checksum"),
            AccelKind::Crypto => write!(f, "crypto"),
            AccelKind::FlowCache => write!(f, "flow-cache"),
            AccelKind::Lpm => write!(f, "lpm"),
        }
    }
}

/// The type of a compute unit (§3.1: "compute units are typed").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComputeClass {
    /// Header processing / match-action engine.
    HeaderEngine,
    /// General-purpose core (NPU microengine, ARM core, ...).
    GeneralCore,
    /// A domain-specific accelerator.
    Accelerator(AccelKind),
}

/// A compute unit node.
#[derive(Debug, Clone)]
pub struct ComputeUnit {
    /// Human-readable name, unique within the NIC (e.g. `"npu0"`).
    pub name: String,
    /// Unit type.
    pub class: ComputeClass,
    /// Hardware threads (Netronome NPUs have 8; a packet is bound to one).
    pub threads: usize,
    /// Island this unit belongs to, if the architecture is clustered.
    pub island: Option<usize>,
    /// Per-operation cycle costs on this unit.
    pub cost: CostModel,
    /// Whether the unit has a floating-point unit. Without one, float
    /// operations are software-emulated (§3.4) at `cost.float_emulation`
    /// cycles each.
    pub has_fpu: bool,
    /// Position in the pipeline for pipelined architectures; units must be
    /// mapped in non-decreasing stage order (§3.4: `Π[k] ≤ Π[t]`).
    pub stage: usize,
}

/// Memory region levels, ordered roughly by distance from the cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemKind {
    /// Per-core local memory / register file.
    Local,
    /// Cluster/island-shared SRAM (Netronome CTM).
    ClusterSram,
    /// On-chip internal memory (Netronome IMEM).
    Internal,
    /// Off-chip DRAM (Netronome EMEM).
    External,
    /// Host memory across PCIe (for partial offloading).
    HostDram,
}

impl fmt::Display for MemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemKind::Local => write!(f, "local"),
            MemKind::ClusterSram => write!(f, "cluster-sram"),
            MemKind::Internal => write!(f, "internal"),
            MemKind::External => write!(f, "external"),
            MemKind::HostDram => write!(f, "host-dram"),
        }
    }
}

/// Optional cache fronting a memory region (e.g. the EMEM's 3 MB cache).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheParams {
    /// Cache capacity in bytes.
    pub capacity: usize,
    /// Line size in bytes.
    pub line: usize,
    /// Associativity (ways).
    pub ways: usize,
    /// Hit latency in cycles.
    pub hit_latency: u64,
}

/// A memory region node.
#[derive(Debug, Clone)]
pub struct MemoryRegion {
    /// Human-readable name, unique within the NIC (e.g. `"emem"`).
    pub name: String,
    /// Hierarchy level.
    pub kind: MemKind,
    /// Capacity in bytes.
    pub capacity: usize,
    /// Baseline access latency in cycles (before NUMA edge weights).
    pub latency: u64,
    /// Marginal cycles per byte for *bulk* transfers out of this region
    /// (DMA-style streaming of packet payloads). The paper's example:
    /// checksumming a 1000-byte packet on an NPU costs ≈1700 extra cycles
    /// for memory accesses — i.e. ≈1.7 cycles/byte out of the CTM.
    pub bulk_per_byte: f64,
    /// Cache fronting this region, if any.
    pub cache: Option<CacheParams>,
    /// Island this region belongs to (e.g. each CTM belongs to one island).
    pub island: Option<usize>,
}

/// Queueing discipline at a switching hub.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueDiscipline {
    /// First-in first-out.
    Fifo,
    /// Weighted round-robin between input ports.
    WeightedRoundRobin,
}

/// A switching hub node: embedded NIC switch or traffic manager.
#[derive(Debug, Clone)]
pub struct SwitchingHub {
    /// Human-readable name.
    pub name: String,
    /// Per-packet traversal latency in cycles.
    pub latency: u64,
    /// Queue capacity in packets.
    pub queue_capacity: usize,
    /// Queueing discipline.
    pub discipline: QueueDiscipline,
}

/// Edge kinds, mirroring §3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// `c↔m`: a compute unit accesses a memory region; the weight captures
    /// NUMA effects and is *added* to the region's base latency.
    MemAccess { unit: UnitId, mem: MemId, extra_latency: u64 },
    /// `m↔M`: hierarchy link; data evicts from `from` to `to` and is
    /// fetched in the opposite direction.
    Hierarchy { from: MemId, to: MemId },
    /// `c1→c2`: staged/pipelined execution order for packets.
    Pipeline { from: UnitId, to: UnitId },
    /// A link into or out of a switching hub.
    HubLink { hub: HubId, unit: UnitId },
}

/// An LNIC edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// What the edge connects and how.
    pub kind: EdgeKind,
}

/// Errors from LNIC validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LnicError {
    /// An edge references a node index that does not exist.
    DanglingEdge(String),
    /// Two nodes share a name.
    DuplicateName(String),
    /// A compute unit has no path to any memory region.
    IsolatedUnit(String),
    /// The NIC has no general-purpose compute at all.
    NoCompute,
}

impl fmt::Display for LnicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LnicError::DanglingEdge(e) => write!(f, "edge references missing node: {e}"),
            LnicError::DuplicateName(n) => write!(f, "duplicate node name: {n}"),
            LnicError::IsolatedUnit(n) => write!(f, "compute unit {n} reaches no memory"),
            LnicError::NoCompute => write!(f, "NIC has no general-purpose compute units"),
        }
    }
}

impl std::error::Error for LnicError {}

/// The logical SmartNIC: nodes, edges, and global parameters.
#[derive(Debug, Clone, Default)]
pub struct Lnic {
    /// Model name (e.g. `"netronome-agilio-cx40"`).
    pub name: String,
    /// Core clock in GHz (cycles ↔ wall-clock conversions).
    pub freq_ghz: f64,
    /// Whether the datapath is run-to-completion (`false`) or staged
    /// pipelining across units is required (`true`).
    pub pipelined: bool,
    /// Energy per active cycle, in nanojoules (for the §6 energy model).
    pub nj_per_cycle: f64,
    units: Vec<ComputeUnit>,
    mems: Vec<MemoryRegion>,
    hubs: Vec<SwitchingHub>,
    edges: Vec<Edge>,
}

impl Lnic {
    /// An empty model with the given name and clock.
    pub fn new(name: impl Into<String>, freq_ghz: f64) -> Self {
        Lnic {
            name: name.into(),
            freq_ghz,
            pipelined: false,
            nj_per_cycle: 0.5,
            ..Lnic::default()
        }
    }

    /// Add a compute unit, returning its id.
    pub fn add_unit(&mut self, unit: ComputeUnit) -> UnitId {
        self.units.push(unit);
        UnitId(self.units.len() - 1)
    }

    /// Add a memory region, returning its id.
    pub fn add_memory(&mut self, mem: MemoryRegion) -> MemId {
        self.mems.push(mem);
        MemId(self.mems.len() - 1)
    }

    /// Add a switching hub, returning its id.
    pub fn add_hub(&mut self, hub: SwitchingHub) -> HubId {
        self.hubs.push(hub);
        HubId(self.hubs.len() - 1)
    }

    /// Add an edge.
    pub fn add_edge(&mut self, kind: EdgeKind) {
        self.edges.push(Edge { kind });
    }

    /// Connect `unit` to `mem` with a NUMA weight.
    pub fn connect_mem(&mut self, unit: UnitId, mem: MemId, extra_latency: u64) {
        self.add_edge(EdgeKind::MemAccess { unit, mem, extra_latency });
    }

    /// All compute units.
    pub fn units(&self) -> &[ComputeUnit] {
        &self.units
    }

    /// All memory regions.
    pub fn memories(&self) -> &[MemoryRegion] {
        &self.mems
    }

    /// All switching hubs.
    pub fn hubs(&self) -> &[SwitchingHub] {
        &self.hubs
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Look up a compute unit by id.
    pub fn unit(&self, id: UnitId) -> &ComputeUnit {
        &self.units[id.0]
    }

    /// Look up a memory region by id.
    pub fn memory(&self, id: MemId) -> &MemoryRegion {
        &self.mems[id.0]
    }

    /// Look up a hub by id.
    pub fn hub(&self, id: HubId) -> &SwitchingHub {
        &self.hubs[id.0]
    }

    /// Find a compute unit by name.
    pub fn unit_named(&self, name: &str) -> Option<UnitId> {
        self.units.iter().position(|u| u.name == name).map(UnitId)
    }

    /// Find a memory region by name.
    pub fn memory_named(&self, name: &str) -> Option<MemId> {
        self.mems.iter().position(|m| m.name == name).map(MemId)
    }

    /// Ids of all units of a given class.
    pub fn units_of_class(&self, class: ComputeClass) -> Vec<UnitId> {
        self.units
            .iter()
            .enumerate()
            .filter(|(_, u)| u.class == class)
            .map(|(i, _)| UnitId(i))
            .collect()
    }

    /// Ids of all accelerator units of a given kind.
    pub fn accelerators(&self, kind: AccelKind) -> Vec<UnitId> {
        self.units_of_class(ComputeClass::Accelerator(kind))
    }

    /// Memory regions accessible from `unit`, with their total access
    /// latency (region base + NUMA edge weight), cheapest first.
    pub fn reachable_memories(&self, unit: UnitId) -> Vec<(MemId, u64)> {
        let mut out: Vec<(MemId, u64)> = self
            .edges
            .iter()
            .filter_map(|e| match e.kind {
                EdgeKind::MemAccess { unit: u, mem, extra_latency } if u == unit => {
                    Some((mem, self.mems[mem.0].latency + extra_latency))
                }
                _ => None,
            })
            .collect();
        out.sort_by_key(|&(_, lat)| lat);
        out
    }

    /// Total access latency from `unit` to `mem`, if connected.
    pub fn try_access_latency(&self, unit: UnitId, mem: MemId) -> Option<u64> {
        self.edges.iter().find_map(|e| match e.kind {
            EdgeKind::MemAccess { unit: u, mem: m, extra_latency } if u == unit && m == mem => {
                Some(self.mems[m.0].latency + extra_latency)
            }
            _ => None,
        })
    }

    /// Total access latency from `unit` to `mem`.
    ///
    /// # Panics
    /// Panics if the unit is not connected to the region; use
    /// [`Lnic::try_access_latency`] to probe.
    pub fn access_latency(&self, unit: UnitId, mem: MemId) -> u64 {
        self.try_access_latency(unit, mem).unwrap_or_else(|| {
            panic!(
                "unit {} has no edge to memory {}",
                self.units[unit.0].name, self.mems[mem.0].name
            )
        })
    }

    /// Total degree of parallelism: threads summed over general cores.
    pub fn total_threads(&self) -> usize {
        self.units
            .iter()
            .filter(|u| u.class == ComputeClass::GeneralCore)
            .map(|u| u.threads)
            .sum()
    }

    /// Convert cycles to nanoseconds at this NIC's clock.
    pub fn cycles_to_ns(&self, cycles: f64) -> f64 {
        cycles / self.freq_ghz
    }

    /// Validate graph integrity (names unique, edges well-formed, every
    /// unit reaches memory, compute exists).
    pub fn validate(&self) -> Result<(), LnicError> {
        let mut names = std::collections::HashSet::new();
        for n in self
            .units
            .iter()
            .map(|u| &u.name)
            .chain(self.mems.iter().map(|m| &m.name))
            .chain(self.hubs.iter().map(|h| &h.name))
        {
            if !names.insert(n.clone()) {
                return Err(LnicError::DuplicateName(n.clone()));
            }
        }
        for e in &self.edges {
            let ok = match e.kind {
                EdgeKind::MemAccess { unit, mem, .. } => {
                    unit.0 < self.units.len() && mem.0 < self.mems.len()
                }
                EdgeKind::Hierarchy { from, to } => {
                    from.0 < self.mems.len() && to.0 < self.mems.len()
                }
                EdgeKind::Pipeline { from, to } => {
                    from.0 < self.units.len() && to.0 < self.units.len()
                }
                EdgeKind::HubLink { hub, unit } => {
                    hub.0 < self.hubs.len() && unit.0 < self.units.len()
                }
            };
            if !ok {
                return Err(LnicError::DanglingEdge(format!("{:?}", e.kind)));
            }
        }
        if self.units_of_class(ComputeClass::GeneralCore).is_empty() {
            return Err(LnicError::NoCompute);
        }
        for (i, u) in self.units.iter().enumerate() {
            if matches!(u.class, ComputeClass::Accelerator(_)) {
                continue; // accelerators receive data via the fabric
            }
            if self.reachable_memories(UnitId(i)).is_empty() {
                return Err(LnicError::IsolatedUnit(u.name.clone()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;

    fn tiny() -> Lnic {
        let mut nic = Lnic::new("tiny", 1.0);
        let core = nic.add_unit(ComputeUnit {
            name: "core0".into(),
            class: ComputeClass::GeneralCore,
            threads: 4,
            island: Some(0),
            cost: CostModel::default(),
            has_fpu: false,
            stage: 0,
        });
        let sram = nic.add_memory(MemoryRegion {
            name: "sram".into(),
            kind: MemKind::ClusterSram,
            capacity: 256 << 10,
            latency: 50,
            bulk_per_byte: 1.0,
            cache: None,
            island: Some(0),
        });
        let dram = nic.add_memory(MemoryRegion {
            name: "dram".into(),
            kind: MemKind::External,
            capacity: 8 << 30,
            latency: 500,
            bulk_per_byte: 4.0,
            cache: Some(CacheParams { capacity: 3 << 20, line: 64, ways: 8, hit_latency: 120 }),
            island: None,
        });
        nic.connect_mem(core, sram, 0);
        nic.connect_mem(core, dram, 20);
        nic.add_edge(EdgeKind::Hierarchy { from: sram, to: dram });
        nic
    }

    #[test]
    fn tiny_nic_validates() {
        assert!(tiny().validate().is_ok());
    }

    #[test]
    fn access_latency_adds_numa_weight() {
        let nic = tiny();
        let core = nic.unit_named("core0").unwrap();
        let sram = nic.memory_named("sram").unwrap();
        let dram = nic.memory_named("dram").unwrap();
        assert_eq!(nic.access_latency(core, sram), 50);
        assert_eq!(nic.access_latency(core, dram), 520);
    }

    #[test]
    fn reachable_memories_sorted_cheapest_first() {
        let nic = tiny();
        let core = nic.unit_named("core0").unwrap();
        let reach = nic.reachable_memories(core);
        assert_eq!(reach.len(), 2);
        assert!(reach[0].1 <= reach[1].1);
        assert_eq!(nic.memory(reach[0].0).name, "sram");
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut nic = tiny();
        nic.add_memory(MemoryRegion {
            name: "sram".into(),
            kind: MemKind::Internal,
            capacity: 1,
            latency: 1,
            bulk_per_byte: 1.0,
            cache: None,
            island: None,
        });
        assert_eq!(nic.validate().unwrap_err(), LnicError::DuplicateName("sram".into()));
    }

    #[test]
    fn dangling_edge_rejected() {
        let mut nic = tiny();
        nic.add_edge(EdgeKind::Pipeline { from: UnitId(0), to: UnitId(99) });
        assert!(matches!(nic.validate().unwrap_err(), LnicError::DanglingEdge(_)));
    }

    #[test]
    fn isolated_unit_rejected() {
        let mut nic = tiny();
        nic.add_unit(ComputeUnit {
            name: "lonely".into(),
            class: ComputeClass::GeneralCore,
            threads: 1,
            island: None,
            cost: CostModel::default(),
            has_fpu: false,
            stage: 0,
        });
        assert_eq!(nic.validate().unwrap_err(), LnicError::IsolatedUnit("lonely".into()));
    }

    #[test]
    fn nic_without_cores_rejected() {
        let mut nic = Lnic::new("empty", 1.0);
        nic.add_unit(ComputeUnit {
            name: "ck".into(),
            class: ComputeClass::Accelerator(AccelKind::Checksum),
            threads: 1,
            island: None,
            cost: CostModel::default(),
            has_fpu: false,
            stage: 0,
        });
        assert_eq!(nic.validate().unwrap_err(), LnicError::NoCompute);
    }

    #[test]
    fn total_threads_counts_general_cores_only() {
        let mut nic = tiny();
        nic.add_unit(ComputeUnit {
            name: "accel".into(),
            class: ComputeClass::Accelerator(AccelKind::Crypto),
            threads: 16,
            island: None,
            cost: CostModel::default(),
            has_fpu: false,
            stage: 0,
        });
        assert_eq!(nic.total_threads(), 4);
    }

    #[test]
    fn cycle_conversion() {
        let nic = Lnic::new("x", 0.8);
        assert!((nic.cycles_to_ns(800.0) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn lookup_by_name() {
        let nic = tiny();
        assert!(nic.unit_named("core0").is_some());
        assert!(nic.unit_named("nope").is_none());
        assert!(nic.memory_named("dram").is_some());
    }
}
