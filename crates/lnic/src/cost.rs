//! Per-unit operation cost tables (the "performance parameters" of §3.2).
//!
//! Each compute unit carries a [`CostModel`] pricing the abstract
//! operations that NF dataflow nodes are made of. The same vocabulary is
//! used by the simulator (to execute) and — after microbenchmark
//! extraction — by the predictor (to estimate), keeping the two sides
//! mechanistically comparable without sharing constants.

/// Cycle costs of abstract operations on one compute unit.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Simple ALU operation (add, sub, and, or, shift, compare).
    pub alu: u64,
    /// Integer multiply.
    pub mul: u64,
    /// Integer divide / modulo.
    pub div: u64,
    /// Taken-branch overhead.
    pub branch: u64,
    /// Packet metadata modification (paper: 2–5 cycles on an NPU).
    pub metadata_mod: u64,
    /// Computing a flow hash over a five-tuple.
    pub hash: u64,
    /// Parsing packet headers (paper: ≈150 cycles on an NPU, dominated by
    /// copying header bytes from CTM into local memory).
    pub parse_header: u64,
    /// One floating-point operation with a hardware FPU.
    pub float_native: u64,
    /// One floating-point operation emulated in software (used when the
    /// unit lacks an FPU, §3.4).
    pub float_emulation: u64,
    /// Pure-compute cycles per payload byte for software streaming
    /// operations (checksumming, byte scanning); memory latency for
    /// fetching the bytes is charged separately per access.
    pub stream_per_byte: f64,
    /// Accelerator service curve, for accelerator-class units.
    pub accel: Option<AccelCost>,
}

impl Default for CostModel {
    /// A generic in-order core: single-cycle ALU, small multiply cost,
    /// expensive divide, no accelerator function.
    fn default() -> Self {
        CostModel {
            alu: 1,
            mul: 3,
            div: 20,
            branch: 2,
            metadata_mod: 3,
            hash: 15,
            parse_header: 150,
            float_native: 4,
            float_emulation: 60,
            stream_per_byte: 0.25,
            accel: None,
        }
    }
}

impl CostModel {
    /// Total cycles to stream `bytes` of payload in software, excluding
    /// memory access latency.
    pub fn stream_cycles(&self, bytes: usize) -> u64 {
        (self.stream_per_byte * bytes as f64).round() as u64
    }
}

/// An accelerator's service-time curve: `base + per_byte × size`.
///
/// The paper's checksum example: ≈300 cycles for a 1000-byte packet at the
/// ingress accelerator (data immediately available), vs ≈1700 *extra*
/// cycles on an NPU for memory accesses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccelCost {
    /// Fixed invocation overhead in cycles.
    pub base: u64,
    /// Marginal cycles per byte processed.
    pub per_byte: f64,
    /// Input queue capacity, in requests (head-of-line blocking happens
    /// here when compute-heavy NFs pile onto one accelerator).
    pub queue_capacity: usize,
}

impl AccelCost {
    /// Service time in cycles for a request over `bytes` bytes.
    pub fn service_cycles(&self, bytes: usize) -> u64 {
        self.base + (self.per_byte * bytes as f64).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let c = CostModel::default();
        assert!(c.alu <= c.mul && c.mul <= c.div);
        assert!(c.float_emulation > c.float_native);
        assert_eq!(c.accel, None);
    }

    #[test]
    fn stream_cycles_rounds() {
        let c = CostModel { stream_per_byte: 0.25, ..CostModel::default() };
        assert_eq!(c.stream_cycles(1000), 250);
        assert_eq!(c.stream_cycles(0), 0);
        assert_eq!(c.stream_cycles(2), 1); // 0.5 rounds to 1
    }

    #[test]
    fn accel_service_curve() {
        let a = AccelCost { base: 60, per_byte: 0.24, queue_capacity: 32 };
        assert_eq!(a.service_cycles(1000), 60 + 240);
        assert_eq!(a.service_cycles(0), 60);
    }
}
