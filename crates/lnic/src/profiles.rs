//! Built-in LNIC profiles.
//!
//! * [`netronome_agilio_cx40`] — the paper's validation target. Parameter
//!   values are the ones §3.2 reports: per-NPU local memory of 4 kB at
//!   1–3 cycles, 256 kB CTM per island at 50 cycles, 4 MB IMEM at up to
//!   250 cycles, 8 GB EMEM at up to 500 cycles with a 3 MB cache, 8
//!   threads per NPU, ≈150-cycle header parsing, 2–5-cycle metadata
//!   modifications, and an ingress checksum accelerator that handles a
//!   1000-byte packet in ≈300 cycles (vs ≈1700 extra memory-access cycles
//!   when done on an NPU).
//! * [`soc_armada`] — an SoC-style NIC (Marvell/BlueField-like): fewer,
//!   faster ARM cores with FPUs and a conventional cache hierarchy.
//! * [`pipeline_asic`] — a pipelined match-action ASIC: very fast header
//!   processing in fixed stages, tiny per-stage SRAM, and prohibitive
//!   costs for payload-streaming work (§6's "run-to-completion vs
//!   pipelined" distinction).

use crate::cost::{AccelCost, CostModel};
use crate::model::{
    AccelKind, CacheParams, ComputeClass, ComputeUnit, EdgeKind, Lnic, MemKind, MemoryRegion,
    QueueDiscipline, SwitchingHub,
};

/// Number of NPU islands in the Netronome profile.
pub const NETRONOME_ISLANDS: usize = 6;
/// NPUs per island in the Netronome profile.
pub const NETRONOME_NPUS_PER_ISLAND: usize = 8;

/// The paper's validation target: Netronome Agilio CX 40 GbE.
pub fn netronome_agilio_cx40() -> Lnic {
    let mut nic = Lnic::new("netronome-agilio-cx40", 0.8);
    nic.nj_per_cycle = 0.45;

    let npu_cost = CostModel {
        alu: 1,
        mul: 5,
        div: 40,
        branch: 2,
        metadata_mod: 3,  // paper: 2-5 cycles
        hash: 20,
        parse_header: 150, // paper: ~150 cycles (CTM -> local memory copy)
        float_native: 0,   // no FPU
        float_emulation: 80,
        stream_per_byte: 0.25,
        accel: None,
    };

    // Memories. One logical local-memory region (4 kB per NPU, 1-3 cycles);
    // one CTM per island (256 kB, 50 cycles); IMEM and EMEM outside the
    // islands.
    let lmem = nic.add_memory(MemoryRegion {
        name: "lmem".into(),
        kind: MemKind::Local,
        capacity: 4 << 10,
        latency: 2,
        bulk_per_byte: 0.3,
        cache: None,
        island: None,
    });
    let mut ctms = Vec::new();
    for island in 0..NETRONOME_ISLANDS {
        ctms.push(nic.add_memory(MemoryRegion {
            name: format!("ctm{island}"),
            kind: MemKind::ClusterSram,
            capacity: 256 << 10,
            latency: 50,
            bulk_per_byte: 1.7, // paper: ~1700 extra cycles / 1000 B
            cache: None,
            island: Some(island),
        }));
    }
    let imem = nic.add_memory(MemoryRegion {
        name: "imem".into(),
        kind: MemKind::Internal,
        capacity: 4 << 20,
        latency: 250,
        bulk_per_byte: 2.5,
        cache: None,
        island: None,
    });
    let emem = nic.add_memory(MemoryRegion {
        name: "emem".into(),
        kind: MemKind::External,
        capacity: 8usize << 30,
        latency: 500,
        bulk_per_byte: 4.0,
        cache: Some(CacheParams {
            capacity: 3 << 20, // paper: 3 MB EMEM cache
            line: 64,
            ways: 8,
            hit_latency: 150,
        }),
        island: None,
    });
    // Flow-cache SRAM backing the hardware exact-match engine.
    let fc_sram = nic.add_memory(MemoryRegion {
        name: "flowcache-sram".into(),
        kind: MemKind::ClusterSram,
        capacity: 512 << 10,
        latency: 30,
        bulk_per_byte: 1.0,
        cache: None,
        island: None,
    });

    // NPUs: islands of 8, 8 threads each, in-order (stable parameters, §4).
    let mut npus = Vec::new();
    for island in 0..NETRONOME_ISLANDS {
        for i in 0..NETRONOME_NPUS_PER_ISLAND {
            let id = nic.add_unit(ComputeUnit {
                name: format!("npu{island}_{i}"),
                class: ComputeClass::GeneralCore,
                threads: 8,
                island: Some(island),
                cost: npu_cost.clone(),
                has_fpu: false,
                stage: 0,
            });
            npus.push((island, id));
        }
    }

    // Accelerators: ingress checksum, crypto, flow-cache engine, LPM engine.
    let cksum = nic.add_unit(ComputeUnit {
        name: "cksum-accel".into(),
        class: ComputeClass::Accelerator(AccelKind::Checksum),
        threads: 1,
        island: None,
        cost: CostModel {
            // 1000-byte packet in ~300 cycles with data at ingress.
            accel: Some(AccelCost { base: 60, per_byte: 0.24, queue_capacity: 64 }),
            ..npu_cost.clone()
        },
        has_fpu: false,
        stage: 0,
    });
    let crypto = nic.add_unit(ComputeUnit {
        name: "crypto-accel".into(),
        class: ComputeClass::Accelerator(AccelKind::Crypto),
        threads: 1,
        island: None,
        cost: CostModel {
            accel: Some(AccelCost { base: 200, per_byte: 1.0, queue_capacity: 32 }),
            ..npu_cost.clone()
        },
        has_fpu: false,
        stage: 0,
    });
    let flowcache = nic.add_unit(ComputeUnit {
        name: "flowcache-engine".into(),
        class: ComputeClass::Accelerator(AccelKind::FlowCache),
        threads: 1,
        island: None,
        cost: CostModel {
            accel: Some(AccelCost { base: 40, per_byte: 0.0, queue_capacity: 64 }),
            ..npu_cost.clone()
        },
        has_fpu: false,
        stage: 0,
    });
    let lpm_engine = nic.add_unit(ComputeUnit {
        name: "lpm-engine".into(),
        class: ComputeClass::Accelerator(AccelKind::Lpm),
        threads: 1,
        island: None,
        cost: CostModel {
            accel: Some(AccelCost { base: 45, per_byte: 0.0, queue_capacity: 64 }),
            ..npu_cost
        },
        has_fpu: false,
        stage: 0,
    });
    nic.connect_mem(flowcache, fc_sram, 0);

    // Memory buses with NUMA weights: local and own-island CTM are cheap;
    // remote CTMs pay a fabric crossing; IMEM/EMEM are uniformly remote.
    for &(island, npu) in &npus {
        nic.connect_mem(npu, lmem, 0);
        for (ci, &ctm) in ctms.iter().enumerate() {
            nic.connect_mem(npu, ctm, if ci == island { 0 } else { 60 });
        }
        nic.connect_mem(npu, imem, 0);
        nic.connect_mem(npu, emem, 0);
    }

    // Memory hierarchy: lmem -> ctm0 -> imem -> emem (eviction direction).
    nic.add_edge(EdgeKind::Hierarchy { from: lmem, to: ctms[0] });
    for &ctm in &ctms {
        nic.add_edge(EdgeKind::Hierarchy { from: ctm, to: imem });
    }
    nic.add_edge(EdgeKind::Hierarchy { from: imem, to: emem });

    // Distributed switch fabric: ingress traffic manager feeding islands,
    // egress hub draining them.
    let ingress = nic.add_hub(SwitchingHub {
        name: "ingress-tm".into(),
        latency: 50,
        queue_capacity: 512,
        discipline: QueueDiscipline::Fifo,
    });
    let egress = nic.add_hub(SwitchingHub {
        name: "egress-tm".into(),
        latency: 50,
        queue_capacity: 512,
        discipline: QueueDiscipline::Fifo,
    });
    for &(_, npu) in &npus {
        nic.add_edge(EdgeKind::HubLink { hub: ingress, unit: npu });
        nic.add_edge(EdgeKind::HubLink { hub: egress, unit: npu });
    }
    for accel in [cksum, crypto, flowcache, lpm_engine] {
        nic.add_edge(EdgeKind::HubLink { hub: ingress, unit: accel });
    }

    debug_assert!(nic.validate().is_ok());
    nic
}

/// An SoC-style SmartNIC: 8 ARM cores at 2 GHz with FPUs, L2 SRAM, DRAM
/// with a unified cache, and a crypto accelerator. Run-to-completion.
pub fn soc_armada() -> Lnic {
    let mut nic = Lnic::new("soc-armada", 2.0);
    nic.nj_per_cycle = 0.9;

    let core_cost = CostModel {
        alu: 1,
        mul: 3,
        div: 12,
        branch: 1,
        metadata_mod: 2,
        hash: 10,
        parse_header: 80,
        float_native: 2,
        float_emulation: 2, // has FPU; never emulates
        stream_per_byte: 0.12,
        accel: None,
    };

    let l2 = nic.add_memory(MemoryRegion {
        name: "l2-sram".into(),
        kind: MemKind::ClusterSram,
        capacity: 1 << 20,
        latency: 25,
        bulk_per_byte: 0.6,
        cache: None,
        island: Some(0),
    });
    let dram = nic.add_memory(MemoryRegion {
        name: "dram".into(),
        kind: MemKind::External,
        capacity: 4usize << 30,
        latency: 280,
        bulk_per_byte: 1.2,
        cache: Some(CacheParams { capacity: 1 << 20, line: 64, ways: 8, hit_latency: 60 }),
        island: None,
    });

    let mut cores = Vec::new();
    for i in 0..8 {
        let id = nic.add_unit(ComputeUnit {
            name: format!("arm{i}"),
            class: ComputeClass::GeneralCore,
            threads: 1,
            island: Some(0),
            cost: core_cost.clone(),
            has_fpu: true,
            stage: 0,
        });
        cores.push(id);
        nic.connect_mem(id, l2, 0);
        nic.connect_mem(id, dram, 0);
    }
    let crypto = nic.add_unit(ComputeUnit {
        name: "crypto-accel".into(),
        class: ComputeClass::Accelerator(AccelKind::Crypto),
        threads: 1,
        island: None,
        cost: CostModel {
            accel: Some(AccelCost { base: 150, per_byte: 0.8, queue_capacity: 32 }),
            ..core_cost
        },
        has_fpu: false,
        stage: 0,
    });
    nic.add_edge(EdgeKind::Hierarchy { from: l2, to: dram });

    let ingress = nic.add_hub(SwitchingHub {
        name: "nic-switch".into(),
        latency: 80,
        queue_capacity: 256,
        discipline: QueueDiscipline::Fifo,
    });
    for &c in &cores {
        nic.add_edge(EdgeKind::HubLink { hub: ingress, unit: c });
    }
    nic.add_edge(EdgeKind::HubLink { hub: ingress, unit: crypto });

    debug_assert!(nic.validate().is_ok());
    nic
}

/// A pipelined match-action ASIC: four header-engine stages plus a small
/// pool of auxiliary cores; per-stage SRAM only; payload streaming is
/// effectively unsupported (priced at 40 cycles/byte).
pub fn pipeline_asic() -> Lnic {
    let mut nic = Lnic::new("pipeline-asic", 1.2);
    nic.pipelined = true;
    nic.nj_per_cycle = 0.25;

    let stage_cost = CostModel {
        alu: 1,
        mul: 2,
        div: 60,
        branch: 1,
        metadata_mod: 1,
        hash: 4,
        parse_header: 30,
        float_native: 0,
        float_emulation: 200,
        stream_per_byte: 40.0, // no payload datapath
        accel: None,
    };

    let mut srams = Vec::new();
    let mut stages = Vec::new();
    for s in 0..4 {
        let sram = nic.add_memory(MemoryRegion {
            name: format!("stage{s}-sram"),
            kind: MemKind::ClusterSram,
            capacity: 3 << 20, // 3 MB match/action SRAM per stage
            latency: 20,
            bulk_per_byte: 0.5,
            cache: None,
            island: Some(s),
        });
        srams.push(sram);
        let unit = nic.add_unit(ComputeUnit {
            name: format!("stage{s}"),
            class: ComputeClass::HeaderEngine,
            threads: 4,
            island: Some(s),
            cost: stage_cost.clone(),
            has_fpu: false,
            stage: s,
        });
        stages.push(unit);
        nic.connect_mem(unit, sram, 0);
    }
    for w in stages.windows(2) {
        nic.add_edge(EdgeKind::Pipeline { from: w[0], to: w[1] });
    }
    // A small auxiliary core pool for the slow path.
    let aux = nic.add_unit(ComputeUnit {
        name: "aux-core".into(),
        class: ComputeClass::GeneralCore,
        threads: 4,
        island: None,
        cost: CostModel { stream_per_byte: 0.5, ..stage_cost },
        has_fpu: false,
        stage: 3,
    });
    let dram = nic.add_memory(MemoryRegion {
        name: "dram".into(),
        kind: MemKind::External,
        capacity: 2usize << 30,
        latency: 400,
        bulk_per_byte: 3.0,
        cache: None,
        island: None,
    });
    nic.connect_mem(aux, dram, 0);
    for (s, &sram) in srams.iter().enumerate() {
        nic.connect_mem(aux, sram, 40 + 10 * s as u64);
    }

    let tm = nic.add_hub(SwitchingHub {
        name: "traffic-manager".into(),
        latency: 20,
        queue_capacity: 1024,
        discipline: QueueDiscipline::WeightedRoundRobin,
    });
    nic.add_edge(EdgeKind::HubLink { hub: tm, unit: stages[0] });
    nic.add_edge(EdgeKind::HubLink { hub: tm, unit: aux });

    debug_assert!(nic.validate().is_ok());
    nic
}

/// All built-in profiles, for "which NIC fits my workload" sweeps.
pub fn all_profiles() -> Vec<Lnic> {
    vec![netronome_agilio_cx40(), soc_armada(), pipeline_asic()]
}

/// Look up a built-in profile by its CLI/protocol name (`netronome`,
/// `soc`, `asic`). The single resolver shared by the `clara` CLI and the
/// `clara serve` daemon, so the two can never accept different spellings.
pub fn by_name(name: &str) -> Option<Lnic> {
    match name {
        "netronome" => Some(netronome_agilio_cx40()),
        "soc" => Some(soc_armada()),
        "asic" => Some(pipeline_asic()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_validate() {
        for nic in all_profiles() {
            nic.validate().unwrap_or_else(|e| panic!("{}: {e}", nic.name));
        }
    }

    #[test]
    fn netronome_matches_paper_parameters() {
        let nic = netronome_agilio_cx40();
        let npu = nic.unit_named("npu0_0").unwrap();
        let lmem = nic.memory_named("lmem").unwrap();
        let ctm0 = nic.memory_named("ctm0").unwrap();
        let imem = nic.memory_named("imem").unwrap();
        let emem = nic.memory_named("emem").unwrap();

        // §3.2: LMEM 4 kB at 1-3 cycles; CTM 256 kB at 50; IMEM 4 MB at
        // ≤250; EMEM 8 GB at ≤500 with 3 MB cache.
        assert_eq!(nic.memory(lmem).capacity, 4 << 10);
        assert!((1..=3).contains(&nic.access_latency(npu, lmem)));
        assert_eq!(nic.memory(ctm0).capacity, 256 << 10);
        assert_eq!(nic.access_latency(npu, ctm0), 50);
        assert_eq!(nic.memory(imem).capacity, 4 << 20);
        assert_eq!(nic.access_latency(npu, imem), 250);
        assert_eq!(nic.memory(emem).capacity, 8 << 30);
        assert_eq!(nic.access_latency(npu, emem), 500);
        assert_eq!(nic.memory(emem).cache.unwrap().capacity, 3 << 20);

        // 8 threads per NPU; packets bound to a single thread.
        assert_eq!(nic.unit(npu).threads, 8);
        // Header parsing ~150 cycles; metadata mods 2-5 cycles.
        assert_eq!(nic.unit(npu).cost.parse_header, 150);
        assert!((2..=5).contains(&nic.unit(npu).cost.metadata_mod));
    }

    #[test]
    fn netronome_checksum_example_holds() {
        // §2.1: 1000-byte checksum ≈300 cycles at the ingress accelerator;
        // on an NPU it needs ~1700 *extra* cycles for memory access.
        let nic = netronome_agilio_cx40();
        let accel = nic.accelerators(AccelKind::Checksum)[0];
        let accel_cycles = nic.unit(accel).cost.accel.unwrap().service_cycles(1000);
        assert!((250..=350).contains(&accel_cycles), "accel {accel_cycles}");

        let npu = nic.unit_named("npu0_0").unwrap();
        let ctm0 = nic.memory_named("ctm0").unwrap();
        let mem_extra = nic.access_latency(npu, ctm0) as f64
            + nic.memory(ctm0).bulk_per_byte * 1000.0;
        assert!(
            (1500.0..=2000.0).contains(&mem_extra),
            "NPU memory extra = {mem_extra}"
        );
    }

    #[test]
    fn netronome_remote_ctm_pays_numa_penalty() {
        let nic = netronome_agilio_cx40();
        let npu = nic.unit_named("npu0_0").unwrap();
        let own = nic.memory_named("ctm0").unwrap();
        let remote = nic.memory_named("ctm1").unwrap();
        assert!(nic.access_latency(npu, remote) > nic.access_latency(npu, own));
    }

    #[test]
    fn netronome_has_all_accelerators() {
        let nic = netronome_agilio_cx40();
        for kind in [AccelKind::Checksum, AccelKind::Crypto, AccelKind::FlowCache, AccelKind::Lpm]
        {
            assert_eq!(nic.accelerators(kind).len(), 1, "missing {kind}");
        }
    }

    #[test]
    fn netronome_core_count() {
        let nic = netronome_agilio_cx40();
        let cores = nic.units_of_class(ComputeClass::GeneralCore);
        assert_eq!(cores.len(), NETRONOME_ISLANDS * NETRONOME_NPUS_PER_ISLAND);
        assert_eq!(nic.total_threads(), cores.len() * 8);
    }

    #[test]
    fn soc_has_fpu_and_fewer_cores() {
        let nic = soc_armada();
        let cores = nic.units_of_class(ComputeClass::GeneralCore);
        assert_eq!(cores.len(), 8);
        assert!(nic.unit(cores[0]).has_fpu);
        assert!(!nic.pipelined);
    }

    #[test]
    fn asic_is_pipelined_with_ordered_stages() {
        let nic = pipeline_asic();
        assert!(nic.pipelined);
        let stages = nic.units_of_class(ComputeClass::HeaderEngine);
        assert_eq!(stages.len(), 4);
        for (i, &s) in stages.iter().enumerate() {
            assert_eq!(nic.unit(s).stage, i);
        }
        // Payload streaming is effectively unsupported.
        assert!(nic.unit(stages[0]).cost.stream_per_byte > 10.0);
    }

    #[test]
    fn profiles_have_distinct_names() {
        let names: std::collections::HashSet<_> =
            all_profiles().into_iter().map(|n| n.name).collect();
        assert_eq!(names.len(), 3);
    }
}
