//! Synthetic trace generation.
//!
//! The generator realizes an abstract traffic description as a concrete
//! [`Trace`]: it draws a flow per packet (uniform or Zipf popularity),
//! assigns each flow a stable five-tuple, draws payload sizes and
//! protocols, marks the first packet of each TCP flow as a SYN, and spaces
//! arrivals by a constant-bit-rate or Poisson process.

use crate::trace::{Trace, TracePacket};
use crate::zipf::Zipf;
use clara_packet::{FiveTuple, PacketSpec, Proto, TcpFlags};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Packet inter-arrival process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrival {
    /// Constant spacing: every packet exactly `1/rate` apart.
    Constant,
    /// Poisson arrivals: exponential inter-arrival times with mean `1/rate`.
    Poisson,
}

/// Transport payload size distribution.
#[derive(Debug, Clone, PartialEq)]
pub enum SizeDist {
    /// Every payload exactly this many bytes.
    Fixed(usize),
    /// Uniform over `[min, max]`.
    Uniform(usize, usize),
    /// A weighted mixture of fixed sizes, e.g. the classic IMIX.
    Mix(Vec<(usize, f64)>),
}

impl SizeDist {
    /// The classic simple IMIX: 7:4:1 ratio of 40/576/1500-byte packets
    /// (expressed here as transport payload sizes).
    pub fn imix() -> Self {
        SizeDist::Mix(vec![(40, 7.0), (576, 4.0), (1460, 1.0)])
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        match self {
            SizeDist::Fixed(n) => *n,
            SizeDist::Uniform(lo, hi) => rng.gen_range(*lo..=*hi),
            SizeDist::Mix(entries) => {
                let total: f64 = entries.iter().map(|(_, w)| w).sum();
                let mut u = rng.gen::<f64>() * total;
                for (size, w) in entries {
                    if u < *w {
                        return *size;
                    }
                    u -= w;
                }
                entries.last().map(|(s, _)| *s).unwrap_or(0)
            }
        }
    }

    /// The mean payload size of the distribution.
    pub fn mean(&self) -> f64 {
        match self {
            SizeDist::Fixed(n) => *n as f64,
            SizeDist::Uniform(lo, hi) => (*lo + *hi) as f64 / 2.0,
            SizeDist::Mix(entries) => {
                let total: f64 = entries.iter().map(|(_, w)| w).sum();
                if total == 0.0 {
                    0.0
                } else {
                    entries.iter().map(|(s, w)| *s as f64 * w).sum::<f64>() / total
                }
            }
        }
    }
}

/// Builder for synthetic traces. All knobs have sensible defaults; see the
/// crate-level example.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    seed: u64,
    packets: usize,
    flows: usize,
    zipf_alpha: f64,
    rate_pps: f64,
    arrival: Arrival,
    tcp_share: f64,
    sizes: SizeDist,
    syn_on_first: bool,
}

impl TraceGenerator {
    /// A generator with the given RNG seed and defaults: 1000 packets,
    /// 100 flows, uniform popularity, 60 kpps CBR (the paper's validation
    /// rate), all-TCP, 300-byte payloads, SYN on each flow's first packet.
    pub fn new(seed: u64) -> Self {
        TraceGenerator {
            seed,
            packets: 1000,
            flows: 100,
            zipf_alpha: 0.0,
            rate_pps: 60_000.0,
            arrival: Arrival::Constant,
            tcp_share: 1.0,
            sizes: SizeDist::Fixed(300),
            syn_on_first: true,
        }
    }

    /// Total number of packets to generate.
    pub fn packets(mut self, n: usize) -> Self {
        self.packets = n;
        self
    }

    /// Number of concurrent flows.
    pub fn flows(mut self, n: usize) -> Self {
        assert!(n > 0, "at least one flow required");
        self.flows = n;
        self
    }

    /// Zipf exponent for flow popularity (0 = uniform).
    pub fn zipf(mut self, alpha: f64) -> Self {
        self.zipf_alpha = alpha;
        self
    }

    /// Mean packet rate in packets per second.
    pub fn rate_pps(mut self, rate: f64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        self.rate_pps = rate;
        self
    }

    /// Arrival process.
    pub fn arrival(mut self, arrival: Arrival) -> Self {
        self.arrival = arrival;
        self
    }

    /// Fraction of *flows* that are TCP (the rest are UDP).
    pub fn tcp_share(mut self, share: f64) -> Self {
        assert!((0.0..=1.0).contains(&share), "share must be in [0,1]");
        self.tcp_share = share;
        self
    }

    /// Payload size distribution.
    pub fn sizes(mut self, sizes: SizeDist) -> Self {
        self.sizes = sizes;
        self
    }

    /// Whether the first packet of each TCP flow carries SYN.
    pub fn syn_on_first(mut self, yes: bool) -> Self {
        self.syn_on_first = yes;
        self
    }

    /// The five-tuple assigned to flow index `i` (deterministic).
    pub fn flow_tuple(&self, i: usize) -> FiveTuple {
        let proto = self.flow_proto(i);
        let i = i as u32;
        FiveTuple::new(
            [10, ((i >> 14) & 0x3f) as u8, ((i >> 8) & 0x3f) as u8, (i & 0xff) as u8],
            [192, 168, 0, 1],
            (1024 + (i % 60_000)) as u16,
            if proto == Proto::Tcp { 443 } else { 53 },
            proto,
        )
    }

    fn flow_proto(&self, i: usize) -> Proto {
        // Deterministic assignment: the first `tcp_share` fraction of flow
        // indices, hashed to avoid correlating with popularity rank.
        let h = clara_packet::flow::mix64(i as u64 ^ 0x5eed);
        if (h as f64 / u64::MAX as f64) < self.tcp_share {
            Proto::Tcp
        } else {
            Proto::Udp
        }
    }

    /// Lazily generate the trace, one packet per `next()` call.
    ///
    /// The stream yields exactly the sequence [`Self::generate`] would
    /// materialize — same RNG draw order, same monotone timestamps — so
    /// simulators can consume packets without ever holding a full
    /// `Vec<TracePacket>`. `generate` is implemented as
    /// `stream().collect()`, so the two paths cannot drift.
    pub fn stream(&self) -> TraceStream {
        TraceStream {
            rng: StdRng::seed_from_u64(self.seed),
            zipf: Zipf::new(self.flows, self.zipf_alpha),
            mean_gap_ns: 1e9 / self.rate_pps,
            ts: 0.0,
            last_ts_ns: 0,
            seen: FlowSeen::with_flows(self.flows),
            remaining: self.packets,
            gen: self.clone(),
        }
    }

    /// Generate the trace.
    pub fn generate(&self) -> Trace {
        self.stream().collect()
    }
}

/// A lazy trace source: the iterator form of [`TraceGenerator::generate`].
///
/// Timestamps are clamped to be monotonically non-decreasing exactly as
/// [`Trace::push`] would clamp them, so `stream().collect::<Trace>()` is
/// bit-identical to the materialized trace and consumers (e.g. the
/// simulator) may rely on arrival order without buffering the schedule.
pub struct TraceStream {
    gen: TraceGenerator,
    rng: StdRng,
    zipf: Zipf,
    mean_gap_ns: f64,
    ts: f64,
    last_ts_ns: u64,
    seen: FlowSeen,
    remaining: usize,
}

/// First-packet-of-flow tracking as a dense bitset: flow indices are
/// always `< flows`, so a bit per flow replaces the former `HashSet`
/// (same `insert` semantics, no hashing on the per-packet path).
struct FlowSeen {
    bits: Vec<u64>,
}

impl FlowSeen {
    fn with_flows(flows: usize) -> Self {
        FlowSeen { bits: vec![0; flows.div_ceil(64)] }
    }

    /// Mark `i` seen; `true` iff it was not seen before.
    fn insert(&mut self, i: usize) -> bool {
        let (word, mask) = (i / 64, 1u64 << (i % 64));
        let fresh = self.bits[word] & mask == 0;
        self.bits[word] |= mask;
        fresh
    }
}

impl Iterator for TraceStream {
    type Item = TracePacket;

    fn next(&mut self) -> Option<TracePacket> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;

        let flow_idx = self.zipf.sample(&mut self.rng);
        let tuple = self.gen.flow_tuple(flow_idx);
        let payload_len = self.gen.sizes.sample(&mut self.rng);
        let first = self.seen.insert(flow_idx);

        let mut spec = PacketSpec {
            flow: tuple,
            payload_len,
            tcp_flags: TcpFlags(TcpFlags::ACK),
            payload_seed: (flow_idx & 0xff) as u8,
        };
        if tuple.proto == Proto::Tcp && first && self.gen.syn_on_first {
            spec.tcp_flags = TcpFlags(TcpFlags::SYN);
            spec.payload_len = 0; // SYNs carry no payload
        }
        if tuple.proto == Proto::Udp {
            spec.tcp_flags = TcpFlags::default();
        }

        // Same regression clamp as Trace::push, applied at the source.
        let ts_ns = (self.ts as u64).max(self.last_ts_ns);
        self.last_ts_ns = ts_ns;

        let gap = match self.gen.arrival {
            Arrival::Constant => self.mean_gap_ns,
            Arrival::Poisson => {
                let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
                -self.mean_gap_ns * u.ln()
            }
        };
        self.ts += gap;

        Some(TracePacket { ts_ns, spec })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for TraceStream {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_and_rate() {
        let trace = TraceGenerator::new(1).packets(601).rate_pps(10_000.0).generate();
        assert_eq!(trace.len(), 601);
        let stats = trace.stats();
        assert!(
            (stats.rate_pps - 10_000.0).abs() / 10_000.0 < 0.01,
            "rate {}",
            stats.rate_pps
        );
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = TraceGenerator::new(9).packets(200).generate();
        let b = TraceGenerator::new(9).packets(200).generate();
        assert_eq!(a, b);
        let c = TraceGenerator::new(10).packets(200).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn respects_flow_count() {
        let trace = TraceGenerator::new(2).packets(5000).flows(37).generate();
        assert!(trace.stats().flows <= 37);
        assert!(trace.stats().flows > 30); // w.h.p. all flows appear
    }

    #[test]
    fn tcp_share_approximate() {
        let trace = TraceGenerator::new(3)
            .packets(4000)
            .flows(500)
            .tcp_share(0.8)
            .generate();
        let stats = trace.stats();
        assert!((stats.tcp_share - 0.8).abs() < 0.08, "tcp {}", stats.tcp_share);
        assert!((stats.udp_share - 0.2).abs() < 0.08);
    }

    #[test]
    fn first_packet_of_tcp_flow_is_syn() {
        let trace = TraceGenerator::new(4).packets(500).flows(20).tcp_share(1.0).generate();
        let mut seen = std::collections::HashSet::new();
        for p in trace.iter() {
            if seen.insert(p.spec.flow) {
                assert!(p.spec.tcp_flags.syn(), "first packet of {} not SYN", p.spec.flow);
                assert_eq!(p.spec.payload_len, 0);
            } else {
                assert!(!p.spec.tcp_flags.syn());
            }
        }
    }

    #[test]
    fn syn_can_be_disabled() {
        let trace = TraceGenerator::new(4)
            .packets(100)
            .flows(5)
            .syn_on_first(false)
            .generate();
        assert!(trace.iter().all(|p| !p.spec.tcp_flags.syn()));
    }

    #[test]
    fn zipf_concentrates_traffic() {
        let skewed = TraceGenerator::new(5).packets(5000).flows(1000).zipf(1.5).generate();
        let uniform = TraceGenerator::new(5).packets(5000).flows(1000).zipf(0.0).generate();
        // Skewed traffic touches far fewer distinct flows in 5000 packets.
        let (s, u) = (skewed.stats().flows, uniform.stats().flows);
        assert!(s * 2 < u, "skewed {s} vs uniform {u}");
    }

    #[test]
    fn poisson_arrivals_have_mean_rate() {
        let trace = TraceGenerator::new(6)
            .packets(20_000)
            .arrival(Arrival::Poisson)
            .rate_pps(100_000.0)
            .generate();
        let rate = trace.stats().rate_pps;
        assert!((rate - 100_000.0).abs() / 100_000.0 < 0.05, "rate {rate}");
    }

    #[test]
    fn size_distributions() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(SizeDist::Fixed(99).sample(&mut rng), 99);
        for _ in 0..100 {
            let s = SizeDist::Uniform(10, 20).sample(&mut rng);
            assert!((10..=20).contains(&s));
        }
        let imix = SizeDist::imix();
        assert!((imix.mean() - (40.0 * 7.0 + 576.0 * 4.0 + 1460.0) / 12.0).abs() < 1e-9);
        for _ in 0..100 {
            let s = imix.sample(&mut rng);
            assert!([40usize, 576, 1460].contains(&s));
        }
    }

    #[test]
    fn stream_matches_generate() {
        // The lazy and eager paths must realize the identical packet
        // sequence: count, timestamps (rate), flow tuples, payloads, flags.
        for (seed, arrival, sizes) in [
            (11, Arrival::Constant, SizeDist::Fixed(300)),
            (12, Arrival::Poisson, SizeDist::imix()),
            (13, Arrival::Poisson, SizeDist::Uniform(64, 1400)),
        ] {
            let g = TraceGenerator::new(seed)
                .packets(2500)
                .flows(257)
                .zipf(1.1)
                .arrival(arrival)
                .tcp_share(0.7)
                .sizes(sizes)
                .rate_pps(250_000.0);
            let eager = g.generate();
            let lazy: Trace = g.stream().collect();
            assert_eq!(eager.len(), lazy.len());
            assert_eq!(eager.stats(), lazy.stats());
            for (a, b) in eager.iter().zip(lazy.iter()) {
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn stream_reports_exact_length() {
        let g = TraceGenerator::new(7).packets(123);
        let mut s = g.stream();
        assert_eq!(s.len(), 123);
        s.next();
        assert_eq!(s.len(), 122);
        assert_eq!(s.count(), 122);
    }

    #[test]
    fn stream_timestamps_monotone() {
        let g = TraceGenerator::new(8).packets(4000).arrival(Arrival::Poisson);
        let mut last = 0u64;
        for p in g.stream() {
            assert!(p.ts_ns >= last);
            last = p.ts_ns;
        }
    }

    #[test]
    fn flow_tuples_are_distinct() {
        let g = TraceGenerator::new(0).flows(10_000);
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000 {
            assert!(seen.insert(g.flow_tuple(i)), "duplicate tuple for flow {i}");
        }
    }
}
