//! From-scratch reader/writer for the classic libpcap file format.
//!
//! The format is a 24-byte global header followed by per-packet records
//! (16-byte record header + captured bytes). We write microsecond
//! timestamps, little-endian, LINKTYPE_ETHERNET — the most common variant —
//! and read both endiannesses.
//!
//! This is how Clara ingests "a pcap trace" as a workload description
//! (§3.5) without depending on libpcap.

use crate::trace::{Trace, TracePacket};
use clara_packet::build_packet;
use std::io::{self, Read, Write};

const MAGIC_LE: u32 = 0xa1b2_c3d4;
const MAGIC_BE: u32 = 0xd4c3_b2a1;
const VERSION_MAJOR: u16 = 2;
const VERSION_MINOR: u16 = 4;
const LINKTYPE_ETHERNET: u32 = 1;
const DEFAULT_SNAPLEN: u32 = 65_535;

/// Hard ceiling on a single record's capture length, independent of the
/// snaplen the file claims. A hostile header can declare a multi-gigabyte
/// snaplen; honoring it would let one 16-byte record header demand an
/// arbitrarily large allocation. Real link MTUs top out around 9 kB
/// (jumbo frames); 256 kB leaves generous slack.
pub const MAX_CAPTURE_BYTES: usize = 256 * 1024;

/// Errors from pcap reading/writing.
#[derive(Debug)]
pub enum PcapError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The global header's magic number is not a pcap magic.
    BadMagic(u32),
    /// A record is inconsistent (e.g. capture length exceeds snaplen or
    /// the record is truncated).
    BadRecord(String),
    /// The captured frame could not be parsed as Ethernet/IPv4.
    BadPacket(clara_packet::Error),
}

impl std::fmt::Display for PcapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcapError::Io(e) => write!(f, "pcap I/O error: {e}"),
            PcapError::BadMagic(m) => write!(f, "not a pcap file (magic {m:#010x})"),
            PcapError::BadRecord(msg) => write!(f, "bad pcap record: {msg}"),
            PcapError::BadPacket(e) => write!(f, "unparseable captured frame: {e}"),
        }
    }
}

impl std::error::Error for PcapError {}

impl From<io::Error> for PcapError {
    fn from(e: io::Error) -> Self {
        PcapError::Io(e)
    }
}

/// Write a trace as a pcap file, synthesizing full wire bytes for each
/// packet (valid Ethernet/IPv4/transport headers and checksums).
pub fn write_pcap<W: Write>(mut w: W, trace: &Trace) -> Result<(), PcapError> {
    w.write_all(&MAGIC_LE.to_le_bytes())?;
    w.write_all(&VERSION_MAJOR.to_le_bytes())?;
    w.write_all(&VERSION_MINOR.to_le_bytes())?;
    w.write_all(&0i32.to_le_bytes())?; // thiszone
    w.write_all(&0u32.to_le_bytes())?; // sigfigs
    w.write_all(&DEFAULT_SNAPLEN.to_le_bytes())?;
    w.write_all(&LINKTYPE_ETHERNET.to_le_bytes())?;

    for packet in trace.iter() {
        let bytes = build_packet(&packet.spec);
        let ts_sec = (packet.ts_ns / 1_000_000_000) as u32;
        let ts_usec = ((packet.ts_ns % 1_000_000_000) / 1_000) as u32;
        w.write_all(&ts_sec.to_le_bytes())?;
        w.write_all(&ts_usec.to_le_bytes())?;
        w.write_all(&(bytes.len() as u32).to_le_bytes())?;
        w.write_all(&(bytes.len() as u32).to_le_bytes())?;
        w.write_all(&bytes)?;
    }
    Ok(())
}

/// Read a pcap file back into a [`Trace`].
///
/// Frames that are not Ethernet/IPv4/TCP|UDP|other-IP are rejected with
/// [`PcapError::BadPacket`]; Clara's NF corpus only models IPv4 traffic.
pub fn read_pcap<R: Read>(mut r: R) -> Result<Trace, PcapError> {
    let mut header = [0u8; 24];
    r.read_exact(&mut header)?;
    let magic = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    let little_endian = match magic {
        MAGIC_LE => true,
        MAGIC_BE => false,
        other => return Err(PcapError::BadMagic(other)),
    };
    let read_u32 = |b: &[u8]| -> u32 {
        let arr = [b[0], b[1], b[2], b[3]];
        if little_endian {
            u32::from_le_bytes(arr)
        } else {
            u32::from_be_bytes(arr)
        }
    };
    let snaplen = read_u32(&header[16..20]);

    let mut trace = Trace::new();
    loop {
        let mut rec = [0u8; 16];
        match r.read_exact(&mut rec) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e.into()),
        }
        let ts_sec = u64::from(read_u32(&rec[0..4]));
        let ts_usec = u64::from(read_u32(&rec[4..8]));
        let incl_len = read_u32(&rec[8..12]) as usize;
        if incl_len > snaplen as usize {
            return Err(PcapError::BadRecord(format!(
                "capture length {incl_len} exceeds snaplen {snaplen}"
            )));
        }
        if incl_len > MAX_CAPTURE_BYTES {
            return Err(PcapError::BadRecord(format!(
                "capture length {incl_len} exceeds the {MAX_CAPTURE_BYTES}-byte limit"
            )));
        }
        let mut frame = vec![0u8; incl_len];
        r.read_exact(&mut frame)
            .map_err(|_| PcapError::BadRecord("truncated packet record".into()))?;
        let parsed = clara_packet::parse_packet(&frame).map_err(PcapError::BadPacket)?;
        trace.push(TracePacket {
            ts_ns: ts_sec * 1_000_000_000 + ts_usec * 1_000,
            spec: clara_packet::PacketSpec {
                flow: parsed.flow,
                payload_len: parsed.payload_len,
                tcp_flags: parsed.tcp_flags,
                payload_seed: 0,
            },
        });
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TraceGenerator;

    #[test]
    fn roundtrip_preserves_flows_sizes_and_times() {
        let original = TraceGenerator::new(11)
            .packets(200)
            .flows(20)
            .tcp_share(0.7)
            .generate();
        let mut buf = Vec::new();
        write_pcap(&mut buf, &original).unwrap();
        let restored = read_pcap(&buf[..]).unwrap();
        assert_eq!(restored.len(), original.len());
        for (a, b) in original.iter().zip(restored.iter()) {
            assert_eq!(a.spec.flow, b.spec.flow);
            assert_eq!(a.spec.payload_len, b.spec.payload_len);
            assert_eq!(a.spec.tcp_flags.syn(), b.spec.tcp_flags.syn());
            // Timestamps survive at microsecond resolution.
            assert_eq!(a.ts_ns / 1000, b.ts_ns / 1000);
        }
    }

    #[test]
    fn rejects_garbage() {
        let err = read_pcap(&b"not a pcap file at all......."[..]).unwrap_err();
        assert!(matches!(err, PcapError::BadMagic(_)), "{err}");
    }

    #[test]
    fn rejects_truncated_record() {
        let trace = TraceGenerator::new(1).packets(3).generate();
        let mut buf = Vec::new();
        write_pcap(&mut buf, &trace).unwrap();
        buf.truncate(buf.len() - 5);
        let err = read_pcap(&buf[..]).unwrap_err();
        assert!(matches!(err, PcapError::BadRecord(_)), "{err}");
    }

    #[test]
    fn empty_trace_roundtrips() {
        let mut buf = Vec::new();
        write_pcap(&mut buf, &Trace::new()).unwrap();
        assert_eq!(buf.len(), 24);
        assert!(read_pcap(&buf[..]).unwrap().is_empty());
    }

    #[test]
    fn reads_big_endian_headers() {
        // Hand-build a big-endian pcap with one UDP packet.
        let spec = clara_packet::PacketSpec::udp([1, 2, 3, 4], [5, 6, 7, 8], 10, 20, 4);
        let frame = clara_packet::build_packet(&spec);
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_BE.to_le_bytes()); // 0xd4c3b2a1 read LE == BE file
        buf.extend_from_slice(&2u16.to_be_bytes());
        buf.extend_from_slice(&4u16.to_be_bytes());
        buf.extend_from_slice(&[0; 8]);
        buf.extend_from_slice(&65535u32.to_be_bytes());
        buf.extend_from_slice(&1u32.to_be_bytes());
        buf.extend_from_slice(&7u32.to_be_bytes()); // ts_sec
        buf.extend_from_slice(&500u32.to_be_bytes()); // ts_usec
        buf.extend_from_slice(&(frame.len() as u32).to_be_bytes());
        buf.extend_from_slice(&(frame.len() as u32).to_be_bytes());
        buf.extend_from_slice(&frame);
        let trace = read_pcap(&buf[..]).unwrap();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.packets()[0].ts_ns, 7_000_000_000 + 500_000);
        assert_eq!(trace.packets()[0].spec.flow, spec.flow);
    }

    #[test]
    fn rejects_huge_capture_length_without_allocating() {
        // A hostile file claims a 4 GiB snaplen and a matching record
        // length; the reader must refuse rather than allocate.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_LE.to_le_bytes());
        buf.extend_from_slice(&VERSION_MAJOR.to_le_bytes());
        buf.extend_from_slice(&VERSION_MINOR.to_le_bytes());
        buf.extend_from_slice(&[0; 8]);
        buf.extend_from_slice(&u32::MAX.to_le_bytes()); // snaplen: 4 GiB - 1
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&[0; 8]); // ts
        buf.extend_from_slice(&0xf000_0000u32.to_le_bytes()); // incl_len
        buf.extend_from_slice(&0xf000_0000u32.to_le_bytes());
        let err = read_pcap(&buf[..]).unwrap_err();
        assert!(matches!(err, PcapError::BadRecord(_)), "{err}");
        assert!(err.to_string().contains("limit"), "{err}");
    }

    #[test]
    fn rejects_record_exceeding_snaplen() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_LE.to_le_bytes());
        buf.extend_from_slice(&VERSION_MAJOR.to_le_bytes());
        buf.extend_from_slice(&VERSION_MINOR.to_le_bytes());
        buf.extend_from_slice(&[0; 8]);
        buf.extend_from_slice(&100u32.to_le_bytes()); // snaplen 100
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&[0; 8]); // ts
        buf.extend_from_slice(&200u32.to_le_bytes()); // incl_len 200 > snaplen
        buf.extend_from_slice(&200u32.to_le_bytes());
        let err = read_pcap(&buf[..]).unwrap_err();
        assert!(matches!(err, PcapError::BadRecord(_)), "{err}");
    }
}
