//! Workload profiles, trace generation, and pcap I/O for Clara.
//!
//! Clara's predictor consumes a *workload description* (§3.5 of the paper):
//! either a concrete packet trace (e.g. a pcap file) or an abstract profile
//! such as "80% TCP vs 20% UDP" or "10k concurrent TCP flows with 300-byte
//! average packet size". This crate provides both:
//!
//! * [`Trace`] — a concrete, timestamped sequence of packets, with
//!   statistics ([`TraceStats`]).
//! * [`TraceGenerator`] — synthesizes traces: flow counts, Zipf or uniform
//!   flow popularity, packet-size and protocol mixes, SYN-on-first-packet,
//!   constant-rate or Poisson arrivals.
//! * [`WorkloadProfile`] — the abstract form; it can be *derived from* a
//!   trace or *expanded into* one.
//! * [`pcap`] — a from-scratch reader/writer for the classic libpcap file
//!   format, round-tripping real wire bytes built by `clara-packet`.
//!
//! # Example
//!
//! ```
//! use clara_workload::{TraceGenerator, SizeDist, WorkloadProfile};
//!
//! let trace = TraceGenerator::new(42)
//!     .packets(1000)
//!     .flows(100)
//!     .rate_pps(60_000.0)
//!     .tcp_share(0.8)
//!     .sizes(SizeDist::Fixed(300))
//!     .generate();
//! assert_eq!(trace.len(), 1000);
//! let profile = WorkloadProfile::from_trace(&trace);
//! assert!((profile.tcp_share - 0.8).abs() < 0.1);
//! ```

pub mod cache;
pub mod gen;
pub mod pcap;
pub mod profile;
pub mod trace;
pub mod zipf;

pub use cache::{CachedStream, TraceCache};
pub use gen::{Arrival, SizeDist, TraceGenerator, TraceStream};
pub use profile::{WorkloadError, WorkloadProfile};
pub use trace::{Trace, TracePacket, TraceStats};
pub use zipf::Zipf;
