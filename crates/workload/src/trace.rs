//! Concrete packet traces and their statistics.

use clara_packet::{PacketSpec, Proto};
use std::collections::HashSet;

/// One packet in a trace: an arrival timestamp plus the packet description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TracePacket {
    /// Arrival time in nanoseconds from trace start.
    pub ts_ns: u64,
    /// The packet itself.
    pub spec: PacketSpec,
}

/// A timestamped sequence of packets.
///
/// Traces are ordered by arrival time; [`Trace::push`] maintains the
/// invariant by clamping regressions to the previous timestamp.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    packets: Vec<TracePacket>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Append a packet, keeping timestamps monotonically non-decreasing.
    pub fn push(&mut self, mut packet: TracePacket) {
        if let Some(last) = self.packets.last() {
            if packet.ts_ns < last.ts_ns {
                packet.ts_ns = last.ts_ns;
            }
        }
        self.packets.push(packet);
    }

    /// Number of packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Iterate over packets in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = &TracePacket> {
        self.packets.iter()
    }

    /// The packets as a slice.
    pub fn packets(&self) -> &[TracePacket] {
        &self.packets
    }

    /// Duration from first to last arrival, in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        match (self.packets.first(), self.packets.last()) {
            (Some(first), Some(last)) => last.ts_ns - first.ts_ns,
            _ => 0,
        }
    }

    /// Compute summary statistics.
    pub fn stats(&self) -> TraceStats {
        let mut flows = HashSet::new();
        let mut tcp = 0usize;
        let mut udp = 0usize;
        let mut syn = 0usize;
        let mut payload_total = 0u64;
        let mut max_payload = 0usize;
        for p in &self.packets {
            flows.insert(p.spec.flow);
            match p.spec.flow.proto {
                Proto::Tcp => {
                    tcp += 1;
                    if p.spec.tcp_flags.syn() {
                        syn += 1;
                    }
                }
                Proto::Udp => udp += 1,
                Proto::Other(_) => {}
            }
            payload_total += p.spec.payload_len as u64;
            max_payload = max_payload.max(p.spec.payload_len);
        }
        let n = self.packets.len();
        let dur = self.duration_ns();
        TraceStats {
            packets: n,
            flows: flows.len(),
            tcp_share: ratio(tcp, n),
            udp_share: ratio(udp, n),
            syn_share: ratio(syn, n),
            avg_payload: if n == 0 { 0.0 } else { payload_total as f64 / n as f64 },
            max_payload,
            rate_pps: if dur == 0 {
                0.0
            } else {
                // n packets over `dur` covers n-1 inter-arrival gaps.
                (n.saturating_sub(1)) as f64 * 1e9 / dur as f64
            },
        }
    }
}

fn ratio(part: usize, whole: usize) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64
    }
}

impl FromIterator<TracePacket> for Trace {
    fn from_iter<I: IntoIterator<Item = TracePacket>>(iter: I) -> Self {
        let mut trace = Trace::new();
        for p in iter {
            trace.push(p);
        }
        trace
    }
}

/// Summary statistics of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Total packet count.
    pub packets: usize,
    /// Number of distinct five-tuples.
    pub flows: usize,
    /// Fraction of packets that are TCP.
    pub tcp_share: f64,
    /// Fraction of packets that are UDP.
    pub udp_share: f64,
    /// Fraction of packets with the TCP SYN flag set.
    pub syn_share: f64,
    /// Mean transport payload length in bytes.
    pub avg_payload: f64,
    /// Largest transport payload length in bytes.
    pub max_payload: usize,
    /// Mean packet rate in packets per second.
    pub rate_pps: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use clara_packet::PacketSpec;

    fn pkt(ts_ns: u64, payload: usize) -> TracePacket {
        TracePacket {
            ts_ns,
            spec: PacketSpec::tcp([10, 0, 0, 1], [10, 0, 0, 2], 1000, 80, payload),
        }
    }

    #[test]
    fn push_keeps_timestamps_monotone() {
        let mut t = Trace::new();
        t.push(pkt(100, 0));
        t.push(pkt(50, 0)); // regression clamped
        assert_eq!(t.packets()[1].ts_ns, 100);
    }

    #[test]
    fn empty_trace_stats() {
        let s = Trace::new().stats();
        assert_eq!(s.packets, 0);
        assert_eq!(s.flows, 0);
        assert_eq!(s.rate_pps, 0.0);
        assert_eq!(s.avg_payload, 0.0);
    }

    #[test]
    fn stats_counts_protocols_and_flows() {
        let mut t = Trace::new();
        t.push(pkt(0, 100));
        t.push(pkt(10, 200));
        t.push(TracePacket {
            ts_ns: 20,
            spec: PacketSpec::udp([10, 0, 0, 3], [10, 0, 0, 2], 2000, 53, 300),
        });
        let s = t.stats();
        assert_eq!(s.packets, 3);
        assert_eq!(s.flows, 2);
        assert!((s.tcp_share - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.udp_share - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.avg_payload - 200.0).abs() < 1e-12);
        assert_eq!(s.max_payload, 300);
    }

    #[test]
    fn rate_uses_interarrival_gaps() {
        let mut t = Trace::new();
        // 3 packets at 0, 1ms, 2ms -> 2 gaps over 2ms -> 1000 pps.
        for i in 0..3 {
            t.push(pkt(i * 1_000_000, 0));
        }
        assert!((t.stats().rate_pps - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn syn_share_counts_only_tcp_syn() {
        let mut t = Trace::new();
        t.push(TracePacket {
            ts_ns: 0,
            spec: PacketSpec::tcp([1, 1, 1, 1], [2, 2, 2, 2], 1, 2, 0).with_syn(),
        });
        t.push(pkt(1, 0));
        assert!((t.stats().syn_share - 0.5).abs() < 1e-12);
    }

    #[test]
    fn from_iterator_collects() {
        let t: Trace = (0..5).map(|i| pkt(i * 10, i as usize)).collect();
        assert_eq!(t.len(), 5);
        assert_eq!(t.duration_ns(), 40);
    }
}
