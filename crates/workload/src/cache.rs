//! Cross-rate trace-body sharing for sweep grids.
//!
//! Sweep grids vary offered rate as one axis, and [`WorkloadProfile::
//! to_trace_stream`] always spaces packets with [`Arrival::Constant`]
//! gaps. Under constant spacing the inter-arrival gap consumes no RNG
//! draws, so the random draw sequence — and with it every flow choice,
//! payload size, protocol, and SYN decision — is a pure function of the
//! *rate-independent* profile fields plus `(packets, seed)`. Two cells
//! that differ only in `rate_pps` therefore generate byte-identical
//! packet *bodies*; only the timestamps differ, and those are a cheap
//! deterministic accumulation (`ts += 1e9/rate` with the same `as u64`
//! truncation and monotonicity clamp the generator applies).
//!
//! [`TraceCache`] exploits that: it materializes the body (the
//! [`PacketSpec`] column) once per unique rate-independent key and
//! replays it per rate with freshly computed timestamps. The replayed
//! stream is packet-for-packet identical to `to_trace_stream` — the
//! parity test below and the simulator's bit-identity checks both pin
//! this — so swapping a cache in can never change a result, only the
//! time spent generating it.
//!
//! [`Arrival::Constant`]: crate::gen::Arrival::Constant
//! [`WorkloadProfile::to_trace_stream`]: crate::profile::WorkloadProfile::to_trace_stream

use crate::profile::WorkloadProfile;
use crate::trace::TracePacket;
use clara_packet::PacketSpec;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// The rate-independent identity of a trace body: every input of
/// [`WorkloadProfile::to_trace_stream`] except `rate_pps`.
#[derive(PartialEq, Eq, Hash, Clone)]
struct BodyKey {
    packets: usize,
    seed: u64,
    flows: usize,
    tcp_share: u64,
    zipf_alpha: u64,
    avg_payload: u64,
    syn_on_first: bool,
}

impl BodyKey {
    fn of(profile: &WorkloadProfile, packets: usize, seed: u64) -> Self {
        BodyKey {
            packets,
            seed,
            flows: profile.flows.max(1),
            tcp_share: profile.tcp_share.clamp(0.0, 1.0).to_bits(),
            zipf_alpha: profile.zipf_alpha.to_bits(),
            avg_payload: profile.avg_payload.round().to_bits(),
            syn_on_first: profile.syn_share > 0.0,
        }
    }
}

/// A shareable cache of rate-independent trace bodies.
///
/// Thread-safe: sweep workers may share one cache behind a reference.
/// Values are deterministic functions of their key, so a racing double
/// computation inserts the same body twice — wasteful, never wrong.
#[derive(Default)]
pub struct TraceCache {
    bodies: Mutex<HashMap<BodyKey, Arc<Vec<PacketSpec>>>>,
}

impl TraceCache {
    /// An empty cache.
    pub fn new() -> Self {
        TraceCache::default()
    }

    /// A packet stream identical to
    /// `profile.to_trace_stream(packets, seed)`, generating the body on
    /// first use and replaying it (with per-rate timestamps) afterwards.
    pub fn stream(&self, profile: &WorkloadProfile, packets: usize, seed: u64) -> CachedStream {
        let key = BodyKey::of(profile, packets, seed);
        let body = {
            let cached = self.bodies.lock().unwrap().get(&key).cloned();
            match cached {
                Some(b) => b,
                None => {
                    // Generate outside the lock: bodies are pure in the
                    // key, so concurrent duplicates agree byte-for-byte.
                    let b: Arc<Vec<PacketSpec>> = Arc::new(
                        profile
                            .to_trace_stream(packets, seed)
                            .map(|p| p.spec)
                            .collect(),
                    );
                    self.bodies
                        .lock()
                        .unwrap()
                        .entry(key)
                        .or_insert_with(|| Arc::clone(&b))
                        .clone()
                }
            }
        };
        CachedStream {
            body,
            next: 0,
            // Same gap the generator uses: `1e9 / rate_pps.max(1.0)`.
            mean_gap_ns: 1e9 / profile.rate_pps.max(1.0),
            ts: 0.0,
            last_ts_ns: 0,
        }
    }

    /// Number of distinct bodies currently cached.
    pub fn len(&self) -> usize {
        self.bodies.lock().unwrap().len()
    }

    /// Whether the cache holds no bodies yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A replayed trace: a shared body column plus per-rate timestamps,
/// yielding exactly the sequence `to_trace_stream` would.
pub struct CachedStream {
    body: Arc<Vec<PacketSpec>>,
    next: usize,
    mean_gap_ns: f64,
    ts: f64,
    last_ts_ns: u64,
}

impl Iterator for CachedStream {
    type Item = TracePacket;

    fn next(&mut self) -> Option<TracePacket> {
        let spec = self.body.get(self.next)?.clone();
        self.next += 1;
        // The generator's clamp-then-advance order, bit for bit.
        let ts_ns = (self.ts as u64).max(self.last_ts_ns);
        self.last_ts_ns = ts_ns;
        self.ts += self.mean_gap_ns;
        Some(TracePacket { ts_ns, spec })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.body.len() - self.next;
        (left, Some(left))
    }
}

impl ExactSizeIterator for CachedStream {}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(rate: f64, payload: f64, flows: usize) -> WorkloadProfile {
        WorkloadProfile {
            rate_pps: rate,
            avg_payload: payload,
            max_payload: payload as usize,
            flows,
            ..WorkloadProfile::paper_default()
        }
    }

    #[test]
    fn cached_stream_matches_generator_across_rates() {
        let cache = TraceCache::new();
        for rate in [20_000.0, 60_000.0, 200_000.0, 600_000.0] {
            for (payload, flows) in [(100.0, 100), (1400.0, 10_000)] {
                let wl = profile(rate, payload, flows);
                let direct: Vec<TracePacket> = wl.to_trace_stream(1500, 42).collect();
                let cached: Vec<TracePacket> = cache.stream(&wl, 1500, 42).collect();
                assert_eq!(direct, cached, "rate={rate} payload={payload}");
            }
        }
        // Four rates × two bodies: the body column is shared per
        // rate-independent key, not per cell.
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn syn_share_and_seed_key_the_body() {
        let cache = TraceCache::new();
        let wl = profile(60_000.0, 300.0, 1_000);
        let syn = WorkloadProfile { syn_share: 0.5, ..wl.clone() };
        let a: Vec<TracePacket> = cache.stream(&wl, 400, 1).collect();
        let b: Vec<TracePacket> = cache.stream(&syn, 400, 1).collect();
        let c: Vec<TracePacket> = cache.stream(&wl, 400, 2).collect();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(cache.len(), 3);
        assert_eq!(a, wl.to_trace_stream(400, 1).collect::<Vec<_>>());
        assert_eq!(b, syn.to_trace_stream(400, 1).collect::<Vec<_>>());
    }

    #[test]
    fn exact_size_iterator_counts_down() {
        let cache = TraceCache::new();
        let wl = profile(60_000.0, 300.0, 100);
        let mut s = cache.stream(&wl, 25, 9);
        assert_eq!(s.len(), 25);
        s.next();
        assert_eq!(s.len(), 24);
        assert_eq!(s.count(), 24);
    }
}
