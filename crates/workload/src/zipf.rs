//! Zipf-distributed sampling over flow ranks.
//!
//! Flow popularity in real traffic is heavy-tailed; the paper's motivation
//! (§2.1) calls out that "flow distributions ... could result in different
//! working set sizes, which in turn cause different memory access patterns
//! and cache behaviors". We implement Zipf from scratch (inverse-CDF over a
//! precomputed cumulative table) rather than pulling in `rand_distr`.

use rand::Rng;

/// A Zipf(α) distribution over ranks `0..n`.
///
/// Rank `k` (0-based) has probability proportional to `1 / (k+1)^alpha`.
/// `alpha = 0` degenerates to the uniform distribution.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Build the distribution for `n` ranks with exponent `alpha`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `alpha` is negative or non-finite.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf over zero ranks");
        assert!(alpha >= 0.0 && alpha.is_finite(), "invalid Zipf exponent");
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(alpha);
            cumulative.push(acc);
        }
        let total = acc;
        for c in &mut cumulative {
            *c /= total;
        }
        // Guard against floating-point shortfall at the top end.
        *cumulative.last_mut().expect("n > 0") = 1.0;
        Zipf { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the distribution is over zero ranks (never true).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// The probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cumulative[0]
        } else {
            self.cumulative[k] - self.cumulative[k - 1]
        }
    }

    /// The total probability mass of the `top` most popular ranks.
    ///
    /// This is the quantity the predictor's cache model uses: if a cache
    /// holds the state of the `top` hottest flows, `mass(top)` is the
    /// expected hit ratio.
    pub fn mass(&self, top: usize) -> f64 {
        if top == 0 {
            0.0
        } else {
            self.cumulative[top.min(self.len()) - 1]
        }
    }

    /// Sample a rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("no NaN in table"))
        {
            Ok(i) => (i + 1).min(self.len() - 1),
            Err(i) => i.min(self.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_alpha_zero() {
        let z = Zipf::new(10, 0.0);
        for k in 0..10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-9, "pmf({k}) = {}", z.pmf(k));
        }
    }

    #[test]
    fn mass_is_monotone_and_bounded() {
        let z = Zipf::new(100, 1.0);
        let mut prev = 0.0;
        for top in 0..=100 {
            let m = z.mass(top);
            assert!(m >= prev);
            assert!(m <= 1.0 + 1e-12);
            prev = m;
        }
        assert!((z.mass(100) - 1.0).abs() < 1e-9);
        assert_eq!(z.mass(0), 0.0);
    }

    #[test]
    fn skew_concentrates_mass() {
        // With alpha=1.2 over 1000 ranks, the top 10 ranks should carry far
        // more than 1% of the mass.
        let z = Zipf::new(1000, 1.2);
        assert!(z.mass(10) > 0.4, "mass(10) = {}", z.mass(10));
        let uniform = Zipf::new(1000, 0.0);
        assert!((uniform.mass(10) - 0.01).abs() < 1e-9);
    }

    #[test]
    fn samples_match_pmf() {
        let z = Zipf::new(5, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 5];
        let n = 200_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, &count) in counts.iter().enumerate() {
            let observed = count as f64 / n as f64;
            assert!(
                (observed - z.pmf(k)).abs() < 0.01,
                "rank {k}: observed {observed}, expected {}",
                z.pmf(k)
            );
        }
    }

    #[test]
    fn sample_always_in_range() {
        let z = Zipf::new(3, 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    #[should_panic(expected = "zero ranks")]
    fn zero_ranks_panics() {
        Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid Zipf exponent")]
    fn negative_alpha_panics() {
        Zipf::new(5, -1.0);
    }
}
