//! Abstract workload profiles (§3.5).
//!
//! A [`WorkloadProfile`] is the "10k concurrent TCP flows with 300-byte
//! average packet size" form of workload description. It is the interface
//! between traces and the analytical predictor: the predictor never walks
//! a concrete trace; it consumes the profile's rates, mixes, and skew.

use crate::gen::{SizeDist, TraceGenerator};
use crate::trace::Trace;

/// A rejected [`WorkloadProfile`] input.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadError {
    /// `rate_pps` is NaN, infinite, or not strictly positive.
    BadRate(f64),
    /// `flows` is zero.
    NoFlows,
    /// A share field (`tcp_share` / `syn_share`) is NaN or outside [0, 1].
    BadShare {
        /// Which field.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// `avg_payload` is NaN, negative, or exceeds `max_payload`.
    BadPayload(f64),
    /// `zipf_alpha` is NaN or negative.
    BadZipf(f64),
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::BadRate(v) => {
                write!(f, "rate_pps must be a positive finite number, got {v}")
            }
            WorkloadError::NoFlows => write!(f, "a workload needs at least one flow"),
            WorkloadError::BadShare { field, value } => {
                write!(f, "{field} must be within [0, 1], got {value}")
            }
            WorkloadError::BadPayload(v) => write!(
                f,
                "avg_payload must be finite, non-negative, and at most max_payload, got {v}"
            ),
            WorkloadError::BadZipf(v) => {
                write!(f, "zipf_alpha must be finite and non-negative, got {v}")
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

/// An abstract description of the target traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Number of concurrent flows.
    pub flows: usize,
    /// Fraction of packets that are TCP (the rest UDP).
    pub tcp_share: f64,
    /// Fraction of packets carrying the TCP SYN flag.
    pub syn_share: f64,
    /// Mean transport payload length in bytes.
    pub avg_payload: f64,
    /// Largest payload observed / expected, in bytes.
    pub max_payload: usize,
    /// Offered load in packets per second.
    pub rate_pps: f64,
    /// Zipf exponent of flow popularity (0 = uniform).
    pub zipf_alpha: f64,
}

impl WorkloadProfile {
    /// Build a validated profile. Prefer this over a struct literal for
    /// untrusted inputs (CLI flags, config files): it rejects NaN or
    /// negative rates, zero flows, and out-of-range shares up front, so
    /// garbage never reaches the predictor's arithmetic.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        flows: usize,
        tcp_share: f64,
        syn_share: f64,
        avg_payload: f64,
        max_payload: usize,
        rate_pps: f64,
        zipf_alpha: f64,
    ) -> Result<Self, WorkloadError> {
        let profile = WorkloadProfile {
            flows,
            tcp_share,
            syn_share,
            avg_payload,
            max_payload,
            rate_pps,
            zipf_alpha,
        };
        profile.validate()?;
        Ok(profile)
    }

    /// Check every field against the constraints [`Self::new`] enforces.
    /// Useful when fields were set directly on an existing profile.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        if !self.rate_pps.is_finite() || self.rate_pps <= 0.0 {
            return Err(WorkloadError::BadRate(self.rate_pps));
        }
        if self.flows == 0 {
            return Err(WorkloadError::NoFlows);
        }
        for (field, value) in [("tcp_share", self.tcp_share), ("syn_share", self.syn_share)] {
            if !value.is_finite() || !(0.0..=1.0).contains(&value) {
                return Err(WorkloadError::BadShare { field, value });
            }
        }
        if !self.avg_payload.is_finite()
            || self.avg_payload < 0.0
            || self.avg_payload > self.max_payload as f64
        {
            return Err(WorkloadError::BadPayload(self.avg_payload));
        }
        if !self.zipf_alpha.is_finite() || self.zipf_alpha < 0.0 {
            return Err(WorkloadError::BadZipf(self.zipf_alpha));
        }
        Ok(())
    }

    /// The paper's validation workload: 60 kpps, moderate flow count,
    /// all-TCP, 300-byte payloads.
    pub fn paper_default() -> Self {
        WorkloadProfile {
            flows: 1_000,
            tcp_share: 1.0,
            syn_share: 0.0,
            avg_payload: 300.0,
            max_payload: 300,
            rate_pps: 60_000.0,
            zipf_alpha: 0.0,
        }
    }

    /// Compact one-line description of the profile, for report context
    /// lines and telemetry headers.
    pub fn summary(&self) -> String {
        format!(
            "rate={}pps payload={}B flows={} tcp={:.2} syn={:.2} zipf={}",
            self.rate_pps, self.avg_payload, self.flows, self.tcp_share, self.syn_share,
            self.zipf_alpha,
        )
    }

    /// Derive a profile from a concrete trace.
    ///
    /// Flow skew is estimated by matching the observed fraction of traffic
    /// carried by the top 10% of flows against the Zipf family (a simple
    /// method-of-moments fit over a small grid of exponents).
    pub fn from_trace(trace: &Trace) -> Self {
        let stats = trace.stats();
        // Histogram of packets per flow.
        let mut counts: std::collections::HashMap<_, usize> = std::collections::HashMap::new();
        for p in trace.iter() {
            *counts.entry(p.spec.flow).or_insert(0) += 1;
        }
        let mut per_flow: Vec<usize> = counts.values().copied().collect();
        per_flow.sort_unstable_by(|a, b| b.cmp(a));
        let zipf_alpha = estimate_zipf(&per_flow, trace.len());

        WorkloadProfile {
            flows: stats.flows,
            tcp_share: stats.tcp_share,
            syn_share: stats.syn_share,
            avg_payload: stats.avg_payload,
            max_payload: stats.max_payload,
            rate_pps: stats.rate_pps,
            zipf_alpha,
        }
    }

    /// Expand this profile into a concrete trace of `packets` packets.
    pub fn to_trace(&self, packets: usize, seed: u64) -> Trace {
        self.to_trace_stream(packets, seed).collect()
    }

    /// Lazily expand this profile into a stream of `packets` packets:
    /// the iterator counterpart of [`Self::to_trace`], realizing the
    /// identical packet sequence without materializing it.
    pub fn to_trace_stream(&self, packets: usize, seed: u64) -> crate::gen::TraceStream {
        TraceGenerator::new(seed)
            .packets(packets)
            .flows(self.flows.max(1))
            .zipf(self.zipf_alpha)
            .rate_pps(self.rate_pps.max(1.0))
            .tcp_share(self.tcp_share.clamp(0.0, 1.0))
            .sizes(SizeDist::Fixed(self.avg_payload.round() as usize))
            .syn_on_first(self.syn_share > 0.0)
            .stream()
    }

    /// Expected wire bytes per packet (payload + IPv4/transport/Ethernet
    /// headers, weighted by the protocol mix).
    pub fn avg_wire_len(&self) -> f64 {
        let transport = self.tcp_share * 20.0 + (1.0 - self.tcp_share) * 8.0;
        self.avg_payload + transport + 20.0 + 14.0
    }

    /// Offered load in bits per second.
    pub fn offered_bps(&self) -> f64 {
        self.rate_pps * self.avg_wire_len() * 8.0
    }
}

/// Fit a Zipf exponent to a descending per-flow packet histogram by
/// matching the head mass (fraction of packets in the top 10% of flows).
fn estimate_zipf(per_flow_desc: &[usize], total: usize) -> f64 {
    if per_flow_desc.len() < 10 || total == 0 {
        return 0.0;
    }
    let head = per_flow_desc.len().div_ceil(10);
    let head_mass: f64 =
        per_flow_desc[..head].iter().sum::<usize>() as f64 / total as f64;
    // Grid search over candidate exponents.
    let n = per_flow_desc.len();
    let mut best = (f64::INFINITY, 0.0);
    for step in 0..=30 {
        let alpha = step as f64 * 0.1;
        let z = crate::zipf::Zipf::new(n, alpha);
        let model_mass = z.mass(head);
        let err = (model_mass - head_mass).abs();
        if err < best.0 {
            best = (err, alpha);
        }
    }
    best.1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TraceGenerator;

    #[test]
    fn paper_default_is_60kpps_tcp() {
        let p = WorkloadProfile::paper_default();
        assert_eq!(p.rate_pps, 60_000.0);
        assert_eq!(p.tcp_share, 1.0);
        assert_eq!(p.avg_payload, 300.0);
    }

    #[test]
    fn paper_default_validates() {
        assert_eq!(WorkloadProfile::paper_default().validate(), Ok(()));
        assert!(WorkloadProfile::new(1_000, 1.0, 0.0, 300.0, 300, 60_000.0, 0.0).is_ok());
    }

    #[test]
    fn summary_names_every_axis() {
        let s = WorkloadProfile::paper_default().summary();
        assert_eq!(s, "rate=60000pps payload=300B flows=1000 tcp=1.00 syn=0.00 zipf=0");
    }

    #[test]
    fn rejects_nan_rate() {
        let mut p = WorkloadProfile::paper_default();
        p.rate_pps = f64::NAN;
        assert!(matches!(p.validate(), Err(WorkloadError::BadRate(_))));
    }

    #[test]
    fn rejects_negative_or_zero_rate() {
        let mut p = WorkloadProfile::paper_default();
        p.rate_pps = -60_000.0;
        assert!(matches!(p.validate(), Err(WorkloadError::BadRate(_))));
        p.rate_pps = 0.0;
        assert!(matches!(p.validate(), Err(WorkloadError::BadRate(_))));
        p.rate_pps = f64::INFINITY;
        assert!(matches!(p.validate(), Err(WorkloadError::BadRate(_))));
    }

    #[test]
    fn rejects_zero_flows() {
        let mut p = WorkloadProfile::paper_default();
        p.flows = 0;
        assert_eq!(p.validate(), Err(WorkloadError::NoFlows));
    }

    #[test]
    fn rejects_out_of_range_shares() {
        let mut p = WorkloadProfile::paper_default();
        p.tcp_share = 1.5;
        assert!(matches!(
            p.validate(),
            Err(WorkloadError::BadShare { field: "tcp_share", .. })
        ));
        p.tcp_share = 1.0;
        p.syn_share = -0.1;
        assert!(matches!(
            p.validate(),
            Err(WorkloadError::BadShare { field: "syn_share", .. })
        ));
        p.syn_share = f64::NAN;
        assert!(matches!(p.validate(), Err(WorkloadError::BadShare { .. })));
    }

    #[test]
    fn rejects_bad_payload() {
        let mut p = WorkloadProfile::paper_default();
        p.avg_payload = -1.0;
        assert!(matches!(p.validate(), Err(WorkloadError::BadPayload(_))));
        p.avg_payload = 400.0; // exceeds max_payload of 300
        assert!(matches!(p.validate(), Err(WorkloadError::BadPayload(_))));
    }

    #[test]
    fn rejects_bad_zipf() {
        let mut p = WorkloadProfile::paper_default();
        p.zipf_alpha = -0.5;
        assert!(matches!(p.validate(), Err(WorkloadError::BadZipf(_))));
    }

    #[test]
    fn from_trace_recovers_basic_stats() {
        let trace = TraceGenerator::new(3)
            .packets(5000)
            .flows(200)
            .tcp_share(0.75)
            .rate_pps(50_000.0)
            .syn_on_first(false)
            .generate();
        let p = WorkloadProfile::from_trace(&trace);
        assert!((p.tcp_share - 0.75).abs() < 0.06, "tcp {}", p.tcp_share);
        assert!((p.rate_pps - 50_000.0).abs() / 50_000.0 < 0.02);
        assert!(p.flows <= 200 && p.flows > 150);
    }

    #[test]
    fn zipf_estimate_distinguishes_skew() {
        let uniform = TraceGenerator::new(5)
            .packets(20_000)
            .flows(500)
            .zipf(0.0)
            .syn_on_first(false)
            .generate();
        let skewed = TraceGenerator::new(5)
            .packets(20_000)
            .flows(500)
            .zipf(1.2)
            .syn_on_first(false)
            .generate();
        let pu = WorkloadProfile::from_trace(&uniform);
        let ps = WorkloadProfile::from_trace(&skewed);
        assert!(pu.zipf_alpha < 0.4, "uniform estimated as {}", pu.zipf_alpha);
        assert!(ps.zipf_alpha > 0.8, "skewed estimated as {}", ps.zipf_alpha);
    }

    #[test]
    fn roundtrip_profile_trace_profile() {
        let original = WorkloadProfile {
            flows: 300,
            tcp_share: 0.8,
            syn_share: 0.0,
            avg_payload: 256.0,
            max_payload: 256,
            rate_pps: 40_000.0,
            zipf_alpha: 0.0,
        };
        let trace = original.to_trace(10_000, 7);
        let recovered = WorkloadProfile::from_trace(&trace);
        assert!((recovered.tcp_share - 0.8).abs() < 0.05);
        assert!((recovered.avg_payload - 256.0).abs() < 16.0);
        assert!((recovered.rate_pps - 40_000.0).abs() / 40_000.0 < 0.02);
    }

    #[test]
    fn wire_length_accounts_for_headers() {
        let p = WorkloadProfile { tcp_share: 1.0, ..WorkloadProfile::paper_default() };
        assert!((p.avg_wire_len() - (300.0 + 20.0 + 20.0 + 14.0)).abs() < 1e-9);
        let p = WorkloadProfile { tcp_share: 0.0, ..p };
        assert!((p.avg_wire_len() - (300.0 + 8.0 + 20.0 + 14.0)).abs() < 1e-9);
    }

    #[test]
    fn offered_bps_scales_with_rate() {
        let p = WorkloadProfile::paper_default();
        assert!((p.offered_bps() - p.rate_pps * p.avg_wire_len() * 8.0).abs() < 1e-3);
    }
}
