//! Property tests: pcap round-trips and generator invariants.

use clara_workload::pcap::{read_pcap, write_pcap};
use clara_workload::{SizeDist, TraceGenerator};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any generated trace survives the pcap round trip: same flows,
    /// sizes, flags, and microsecond-truncated timestamps.
    #[test]
    fn pcap_roundtrip(
        seed in any::<u64>(),
        packets in 1usize..300,
        flows in 1usize..100,
        tcp in 0.0f64..=1.0,
        payload in 0usize..1400,
    ) {
        let trace = TraceGenerator::new(seed)
            .packets(packets)
            .flows(flows)
            .tcp_share(tcp)
            .sizes(SizeDist::Fixed(payload))
            .generate();
        let mut buf = Vec::new();
        write_pcap(&mut buf, &trace).unwrap();
        let restored = read_pcap(&buf[..]).unwrap();
        prop_assert_eq!(restored.len(), trace.len());
        for (a, b) in trace.iter().zip(restored.iter()) {
            prop_assert_eq!(a.spec.flow, b.spec.flow);
            prop_assert_eq!(a.spec.payload_len, b.spec.payload_len);
            prop_assert_eq!(a.spec.tcp_flags.syn(), b.spec.tcp_flags.syn());
            prop_assert_eq!(a.ts_ns / 1000, b.ts_ns / 1000);
        }
    }

    /// Corrupting any single byte of a pcap never panics the reader.
    #[test]
    fn corrupted_pcap_never_panics(pos in 0usize..2000, byte in any::<u8>()) {
        let trace = TraceGenerator::new(9).packets(20).generate();
        let mut buf = Vec::new();
        write_pcap(&mut buf, &trace).unwrap();
        let pos = pos % buf.len();
        buf[pos] = byte;
        let _ = read_pcap(&buf[..]); // Ok or Err, never panic
    }

    /// Generator invariants: timestamps monotone, payload sizes within
    /// the distribution, flow count bounded.
    #[test]
    fn generator_invariants(
        seed in any::<u64>(),
        packets in 1usize..400,
        flows in 1usize..200,
        lo in 0usize..700,
        width in 0usize..700,
    ) {
        let trace = TraceGenerator::new(seed)
            .packets(packets)
            .flows(flows)
            .sizes(SizeDist::Uniform(lo, lo + width))
            .syn_on_first(false)
            .generate();
        prop_assert_eq!(trace.len(), packets);
        let mut prev = 0;
        for p in trace.iter() {
            prop_assert!(p.ts_ns >= prev);
            prev = p.ts_ns;
            prop_assert!((lo..=lo + width).contains(&p.spec.payload_len));
        }
        prop_assert!(trace.stats().flows <= flows);
    }

    /// Zipf mass is a monotone CDF for any (n, alpha).
    #[test]
    fn zipf_mass_is_cdf(n in 1usize..500, alpha in 0.0f64..3.0) {
        let z = clara_workload::Zipf::new(n, alpha);
        let mut prev = 0.0;
        for top in 0..=n {
            let m = z.mass(top);
            prop_assert!(m + 1e-12 >= prev);
            prop_assert!(m <= 1.0 + 1e-9);
            prev = m;
        }
        prop_assert!((z.mass(n) - 1.0).abs() < 1e-9);
    }
}
