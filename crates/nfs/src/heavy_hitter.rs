//! Heavy-hitter detection with a counting sketch.
//!
//! Each packet increments its flow's bucket; flows past the threshold are
//! policed. Figure 1's HH variants have "varying packet rates" — at low
//! rates the sketch update dominates; near saturation, queueing does.

use crate::Variant;
use clara_nicsim::{MicroOp, NicProgram, Stage, StageUnit, TableCfg};
use clara_workload::WorkloadProfile;

/// Policing threshold (packets per bucket).
pub const THRESHOLD: u64 = 100_000;

/// The unported NFC source with `buckets` sketch buckets.
pub fn source(buckets: u64) -> String {
    format!(
        r#"nf hh {{
    state sketch: counter[{buckets}];

    fn handle(pkt: packet) -> action {{
        dpdk.parse_headers(pkt);
        let b: u64 = hash(pkt.src_ip, pkt.dst_ip) % {buckets};
        sketch.add(b, 1);
        if (sketch.read(b) > {THRESHOLD}) {{
            return drop;
        }}
        return forward;
    }}
}}"#
    )
}

/// The manual port: sketch in IMEM, read-modify-write plus threshold read.
pub fn ported(buckets: u64) -> NicProgram {
    NicProgram {
        name: "hh".into(),
        tables: vec![TableCfg {
            name: "sketch".into(),
            mem: "imem".into(),
            entry_bytes: 8,
            entries: buckets,
            use_flow_cache: false,
        }],
        stages: vec![Stage {
            name: "count".into(),
            unit: StageUnit::Npu,
            ops: vec![
                MicroOp::ParseHeader,
                MicroOp::Hash { count: 1 },
                MicroOp::CounterUpdate { table: 0 },
                MicroOp::TableLookup { table: 0 },
            ],
        }],
    }
}

/// Figure-1 HH variants: the same sketch at increasing packet rates; the
/// last one pushes the thread pool toward saturation.
pub fn fig1_variants() -> Vec<Variant> {
    [60_000.0, 3_000_000.0, 8_000_000.0]
        .into_iter()
        .map(|rate| Variant {
            label: format!("HH/{}pps", rate as u64),
            program: ported(4_096),
            workload: WorkloadProfile {
                rate_pps: rate,
                flows: 10_000,
                zipf_alpha: 1.1, // elephants pile onto their RSS threads
                ..crate::paper_workload()
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use clara_lnic::profiles;

    #[test]
    fn source_polices_past_threshold() {
        // Use a tiny threshold via a custom source to keep the test fast.
        let src = source(16).replace(&THRESHOLD.to_string(), "3");
        let module = clara_cir::lower(&clara_lang::frontend(&src).unwrap()).unwrap();
        let mut state = clara_cir::HashState::new();
        let pkt = clara_cir::PacketInfo::udp(9, 9, 9, 9, 100);
        let verdicts: Vec<bool> = (0..6)
            .map(|_| {
                clara_cir::execute(&module.handle, &pkt, &mut state, 100_000)
                    .unwrap()
                    .forward
            })
            .collect();
        assert_eq!(verdicts, vec![true, true, true, false, false, false]);
    }

    #[test]
    fn rate_drives_latency_variability() {
        let nic = profiles::netronome_agilio_cx40();
        let lat: Vec<f64> = fig1_variants()
            .iter()
            .map(|v| {
                let trace = v.workload.to_trace(3_000, 13);
                clara_nicsim::simulate(&nic, &v.program, &trace)
                    .unwrap()
                    .avg_latency_cycles
            })
            .collect();
        // The saturated variant is dramatically slower than the idle one.
        assert!(lat[2] > 3.0 * lat[0], "{lat:?}");
    }
}
