//! Longest-prefix match forwarding.
//!
//! The software path is the naive match/action implementation: every rule
//! is checked for the longest match, so latency grows linearly with the
//! rule count — the behaviour behind Figure 3a. The flow-cache variant
//! front-ends the rule table with Netronome's hardware exact-match SRAM
//! (§2.1: "Implementations that use the flow cache significantly
//! outperform those that use software match/action processing in DRAM").

use crate::Variant;
use clara_nicsim::{MicroOp, NicProgram, Stage, StageUnit, TableCfg};

/// The unported NFC source with `rules` LPM rules.
pub fn source(rules: u64) -> String {
    format!(
        r#"nf lpm_fwd {{
    state routes: lpm[{rules}];

    fn handle(pkt: packet) -> action {{
        dpdk.parse_headers(pkt);
        let nh: u64 = routes.lookup(pkt.dst_ip);
        if (nh == 0) {{
            return drop;
        }}
        pkt.set_dst_ip(nh);
        pkt.decrement_ttl();
        return forward;
    }}
}}"#
    )
}

fn rule_table(rules: u64, use_flow_cache: bool) -> TableCfg {
    TableCfg {
        name: "routes".into(),
        mem: "emem".into(),
        entry_bytes: 16,
        entries: rules,
        use_flow_cache,
    }
}

/// The manual port of the software match/action path: a full linear scan
/// of the rule table in EMEM per packet.
pub fn ported_scan(rules: u64) -> NicProgram {
    NicProgram {
        name: "lpm-scan".into(),
        tables: vec![rule_table(rules, false)],
        stages: vec![Stage {
            name: "match".into(),
            unit: StageUnit::Npu,
            ops: vec![
                MicroOp::ParseHeader,
                MicroOp::LinearScan { table: 0 },
                MicroOp::MetadataMod { count: 2 },
            ],
        }],
    }
}

/// The flow-cache port: per-flow results cached in the hardware
/// exact-match engine; only misses pay the scan... which the engine's
/// backing lookup replaces with a hashed access here (the engine resolves
/// misses through its own table walk).
pub fn ported_flow_cache(rules: u64) -> NicProgram {
    NicProgram {
        name: "lpm-fc".into(),
        tables: vec![rule_table(rules, true)],
        stages: vec![Stage {
            name: "match".into(),
            unit: StageUnit::Npu,
            ops: vec![
                MicroOp::ParseHeader,
                MicroOp::TableLookup { table: 0 },
                MicroOp::MetadataMod { count: 2 },
            ],
        }],
    }
}

/// Figure-1 LPM variants: different numbers of match/action rules on the
/// software path. (The flow-cache option of §2.1 is faster by *orders of
/// magnitude* and would dwarf the paper's 16x axis; the `fig1_variability`
/// harness reports it separately, and [`ported_flow_cache`] is exercised
/// by Figure 3a's strategy comparison.)
pub fn fig1_variants() -> Vec<Variant> {
    let workload = crate::paper_workload();
    vec![
        Variant {
            label: "LPM/1k-rules".into(),
            program: ported_scan(1_000),
            workload: workload.clone(),
        },
        Variant {
            label: "LPM/4k-rules".into(),
            program: ported_scan(4_000),
            workload: workload.clone(),
        },
        Variant { label: "LPM/14k-rules".into(), program: ported_scan(14_000), workload },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use clara_lnic::profiles;

    #[test]
    fn scan_latency_linear_in_rules() {
        let nic = profiles::netronome_agilio_cx40();
        let trace = crate::paper_workload().to_trace(300, 11);
        let lat: Vec<f64> = [5_000u64, 10_000, 20_000, 30_000]
            .iter()
            .map(|&r| {
                clara_nicsim::simulate(&nic, &ported_scan(r), &trace)
                    .unwrap()
                    .avg_latency_cycles
            })
            .collect();
        // Successive doublings double the cost (within 25%).
        assert!((lat[1] / lat[0] - 2.0).abs() < 0.5, "{lat:?}");
        assert!((lat[2] / lat[1] - 2.0).abs() < 0.5, "{lat:?}");
        // 30k rules land in the hundreds of K-cycles (Figure 3a scale).
        assert!(lat[3] > 300_000.0, "{lat:?}");
    }

    #[test]
    fn flow_cache_is_orders_of_magnitude_faster() {
        let nic = profiles::netronome_agilio_cx40();
        let trace = crate::paper_workload().to_trace(1_000, 12);
        let scan = clara_nicsim::simulate(&nic, &ported_scan(30_000), &trace)
            .unwrap()
            .avg_latency_cycles;
        let fc = clara_nicsim::simulate(&nic, &ported_flow_cache(30_000), &trace)
            .unwrap()
            .avg_latency_cycles;
        assert!(scan / fc > 50.0, "scan {scan} fc {fc}");
    }

    #[test]
    fn source_drops_unrouted_packets() {
        let module = clara_cir::lower(&clara_lang::frontend(&source(100)).unwrap()).unwrap();
        let mut state = clara_cir::HashState::new();
        let pkt = clara_cir::PacketInfo::tcp(1, 0x0b000001, 3, 4, 64);
        let out = clara_cir::execute(&module.handle, &pkt, &mut state, 100_000).unwrap();
        assert!(!out.forward); // no routes installed
        let sid = module.state_named("routes").unwrap();
        state.add_lpm_rule(sid, 0x0b000000, 8, 7);
        let out = clara_cir::execute(&module.handle, &pkt, &mut state, 100_000).unwrap();
        assert!(out.forward);
        assert_eq!(out.packet_out.dst_ip, 7); // rewritten to the next hop
    }
}
