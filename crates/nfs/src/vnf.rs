//! The VNF chain of Figure 3b: DPI + metering + header modifications +
//! flow statistics.

use clara_nicsim::{MicroOp, NicProgram, Stage, StageUnit, TableCfg};

/// The unported NFC source: an automaton of `automaton_entries`
/// transitions (8 B each) and `stat_buckets` per-flow statistics buckets.
pub fn source(automaton_entries: u64, stat_buckets: u64) -> String {
    format!(
        r#"nf vnf {{
    state automaton: array<u64>[{automaton_entries}];
    state stats: counter[{stat_buckets}];

    fn handle(pkt: packet) -> action {{
        dpdk.parse_headers(pkt);

        // Deep packet inspection over the payload.
        let st: u64 = 0;
        let i: u64 = 0;
        while (i < pkt.payload_len) {{
            let b: u8 = pkt.payload_byte(i);
            st = automaton.get((st ^ b) % {automaton_entries});
            i = i + 1;
        }}
        if (st == 0xbad) {{
            return drop;
        }}

        // Metering.
        let flow: u64 = hash(pkt.src_ip, pkt.dst_ip, pkt.src_port, pkt.dst_port);
        let conformant: bool = meter(flow, 1000000);
        if (!conformant) {{
            return drop;
        }}

        // Header modifications.
        pkt.decrement_ttl();
        pkt.set_dst_port(8080);

        // Flow statistics.
        stats.add(flow % {stat_buckets}, 1);

        return forward;
    }}
}}"#
    )
}

/// The Figure-3b automaton: 1M transitions = 8 MB in EMEM, well past the
/// 3 MB EMEM cache, so per-byte transitions mostly miss.
pub const AUTOMATON_ENTRIES: u64 = 1 << 20;
/// Statistics buckets.
pub const STAT_BUCKETS: u64 = 4_096;

/// The manual port of the chain.
pub fn ported() -> NicProgram {
    NicProgram {
        name: "vnf".into(),
        tables: vec![
            TableCfg {
                name: "automaton".into(),
                mem: "emem".into(),
                entry_bytes: 8,
                entries: AUTOMATON_ENTRIES,
                use_flow_cache: false,
            },
            TableCfg {
                name: "stats".into(),
                mem: "imem".into(),
                entry_bytes: 8,
                entries: STAT_BUCKETS,
                use_flow_cache: false,
            },
        ],
        stages: vec![Stage {
            name: "chain".into(),
            unit: StageUnit::Npu,
            ops: vec![
                MicroOp::ParseHeader,
                MicroOp::StreamPayload { table: Some(0), loop_overhead: 10 }, // DPI
                MicroOp::Hash { count: 1 },
                MicroOp::Compute { cycles: 20 }, // token-bucket meter
                MicroOp::MetadataMod { count: 2 },
                MicroOp::CounterUpdate { table: 1 },
            ],
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clara_lnic::profiles;
    use clara_workload::WorkloadProfile;

    #[test]
    fn source_forwards_and_updates_stats() {
        let module = clara_cir::lower(
            &clara_lang::frontend(&source(4096, 64)).unwrap(),
        )
        .unwrap();
        let mut state = clara_cir::HashState::new();
        let pkt = clara_cir::PacketInfo::tcp(1, 2, 3, 4, 200);
        let out = clara_cir::execute(&module.handle, &pkt, &mut state, 1_000_000).unwrap();
        assert!(out.forward);
        assert_eq!(out.packet_out.ttl, 63);
        assert_eq!(out.packet_out.dst_port, 8080);
    }

    #[test]
    fn chain_latency_linear_in_payload_at_emem_scale() {
        let nic = profiles::netronome_agilio_cx40();
        let prog = ported();
        let mk = |payload: f64| {
            WorkloadProfile {
                avg_payload: payload,
                max_payload: payload as usize,
                ..WorkloadProfile::paper_default()
            }
            .to_trace(150, 17)
        };
        let lat200 =
            clara_nicsim::simulate(&nic, &prog, &mk(200.0)).unwrap().avg_latency_cycles;
        let lat1400 =
            clara_nicsim::simulate(&nic, &prog, &mk(1400.0)).unwrap().avg_latency_cycles;
        // Figure 3b scale: hundreds of K cycles, linear-ish in payload.
        assert!(lat200 > 30_000.0, "200B {lat200}");
        assert!(lat1400 > 300_000.0, "1400B {lat1400}");
        let per_byte = (lat1400 - lat200) / 1200.0;
        assert!((150.0..600.0).contains(&per_byte), "slope {per_byte}");
    }
}
