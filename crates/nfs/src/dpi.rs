//! Deep packet inspection: a byte-wise automaton scan over the payload.
//!
//! The inner loop walks every payload byte through a transition table —
//! the cost is dominated by payload size and by where the automaton
//! lives, which is exactly why Figure 1's DPI variants ("handle different
//! packet sizes") spread so widely.

use crate::Variant;
use clara_nicsim::{MicroOp, NicProgram, Stage, StageUnit, TableCfg};
use clara_workload::WorkloadProfile;

/// The unported NFC source with an explicit scanning loop over an
/// automaton of `entries` states (8 bytes per transition entry).
pub fn source(entries: u64) -> String {
    format!(
        r#"nf dpi {{
    state automaton: array<u64>[{entries}];

    fn handle(pkt: packet) -> action {{
        click.network_header(pkt);
        let st: u64 = 0;
        let i: u64 = 0;
        while (i < pkt.payload_len) {{
            let b: u8 = pkt.payload_byte(i);
            st = automaton.get((st ^ b) % {entries});
            i = i + 1;
        }}
        if (st == 0xdead) {{
            return drop;
        }}
        return forward;
    }}
}}"#
    )
}

/// The manual port: parse, then a per-byte stream with a dependent
/// transition-table access per byte.
pub fn ported(entries: u64, mem: &str) -> NicProgram {
    NicProgram {
        name: "dpi".into(),
        tables: vec![TableCfg {
            name: "automaton".into(),
            mem: mem.into(),
            entry_bytes: 8,
            entries,
            use_flow_cache: false,
        }],
        stages: vec![Stage {
            name: "scan".into(),
            unit: StageUnit::Npu,
            ops: vec![MicroOp::ParseHeader, MicroOp::StreamPayload { table: Some(0), loop_overhead: 10 }],
        }],
    }
}

/// Figure-1 DPI variants: the same scan over 200 / 800 / 1400-byte
/// packets (automaton: 64k states in EMEM).
pub fn fig1_variants() -> Vec<Variant> {
    [200.0, 800.0, 1400.0]
        .into_iter()
        .map(|payload| Variant {
            label: format!("DPI/{}B", payload as u32),
            program: ported(65_536, "emem"),
            workload: WorkloadProfile {
                avg_payload: payload,
                max_payload: payload as usize,
                ..crate::paper_workload()
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use clara_lnic::profiles;

    #[test]
    fn source_extracts_payload_scan_node() {
        let module = clara_cir::lower(&clara_lang::frontend(&source(65_536)).unwrap()).unwrap();
        let graph = clara_dataflow_check(&module);
        assert!(graph);
    }

    // Minimal structural check without adding a dataflow dev-dependency:
    // the loop must read payload bytes and the array.
    fn clara_dataflow_check(module: &clara_cir::CirModule) -> bool {
        let calls: Vec<_> = module.handle.vcalls().map(|(_, c)| *c).collect();
        calls.contains(&clara_cir::VCall::PayloadByte)
            && calls
                .iter()
                .any(|c| matches!(c, clara_cir::VCall::ArrayRead(_)))
    }

    #[test]
    fn latency_scales_with_packet_size() {
        let nic = profiles::netronome_agilio_cx40();
        let lat: Vec<f64> = fig1_variants()
            .iter()
            .map(|v| {
                let trace = v.workload.to_trace(200, 5);
                clara_nicsim::simulate(&nic, &v.program, &trace)
                    .unwrap()
                    .avg_latency_cycles
            })
            .collect();
        assert!(lat[0] < lat[1] && lat[1] < lat[2], "{lat:?}");
        // Roughly linear in payload: 1400B ≈ 7x the 200B cost.
        let ratio = lat[2] / lat[0];
        assert!((4.0..10.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn automaton_placement_matters() {
        let nic = profiles::netronome_agilio_cx40();
        let wl = WorkloadProfile {
            avg_payload: 800.0,
            max_payload: 800,
            ..crate::paper_workload()
        };
        let trace = wl.to_trace(200, 6);
        // A small automaton fits the CTM budget; EMEM costs more per
        // transition once it exceeds the EMEM cache.
        let fast = clara_nicsim::simulate(&nic, &ported(8_192, "ctm0"), &trace)
            .unwrap()
            .avg_latency_cycles;
        let slow = clara_nicsim::simulate(&nic, &ported(1 << 20, "emem"), &trace)
            .unwrap()
            .avg_latency_cycles;
        assert!(slow > 1.5 * fast, "ctm {fast} emem {slow}");
    }
}
