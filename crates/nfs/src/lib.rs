//! The Clara NF corpus.
//!
//! Every network function the paper evaluates, in two forms:
//!
//! * **Unported source** — NFC programs (the DSL of `clara-lang`) using
//!   framework-style APIs, exactly what Clara analyzes.
//! * **Hand-ported programs** — [`clara_nicsim::NicProgram`]s encoding
//!   the decisions a human porter makes (accelerator use, memory
//!   placement, flow-cache use). These run on the simulator and provide
//!   the "Actual" curves of Figure 3 and the variant bars of Figure 1.
//!
//! The five NFs of Figure 1: NAT, DPI, stateful firewall (FW), LPM, and
//! heavy-hitter detection (HH) — plus the VNF chain of Figure 3b
//! (DPI + metering + header modifications + flow statistics).

pub mod dpi;
pub mod firewall;
pub mod heavy_hitter;
pub mod lpm;
pub mod nat;
pub mod vnf;

use clara_nicsim::NicProgram;
use clara_workload::WorkloadProfile;

/// One benchmarkable configuration of an NF: a ported program plus the
/// workload it is measured under.
#[derive(Debug, Clone)]
pub struct Variant {
    /// Label, e.g. `"NAT/accel-cksum"`.
    pub label: String,
    /// The hand-ported program.
    pub program: NicProgram,
    /// The workload to drive it with.
    pub workload: WorkloadProfile,
}

/// All Figure-1 variants: each of the five NFs in its 2–4 configurations
/// (accelerator use, packet sizes, memory locations and flow
/// distributions, rule counts and flow-cache use, packet rates).
pub fn fig1_variants() -> Vec<(String, Vec<Variant>)> {
    vec![
        ("NAT".into(), nat::fig1_variants()),
        ("DPI".into(), dpi::fig1_variants()),
        ("FW".into(), firewall::fig1_variants()),
        ("LPM".into(), lpm::fig1_variants()),
        ("HH".into(), heavy_hitter::fig1_variants()),
    ]
}

pub(crate) fn paper_workload() -> WorkloadProfile {
    WorkloadProfile::paper_default()
}

/// Names accepted by [`by_name`], for error messages and `--help` text.
pub const CORPUS_NAMES: &[&str] = &["nat", "dpi", "dpi-imem", "firewall", "lpm", "hh", "vnf"];

/// Resolve a corpus NF by its CLI/protocol name into both forms a
/// validation needs: the unported source the predictor analyzes and the
/// hand-ported program the simulator executes. The single resolver
/// shared by `clara validate`/`clara profile` and the `clara serve`
/// daemon's `validate` jobs.
pub fn by_name(name: &str) -> Option<(String, NicProgram)> {
    Some(match name {
        "nat" => (nat::source(), nat::ported()),
        "dpi" => (dpi::source(65_536), dpi::ported(65_536, "emem")),
        // The automaton in uncached IMEM: every stage is signature-pure,
        // so this variant exercises the batched stage-cost kernel.
        "dpi-imem" => (dpi::source(65_536), dpi::ported(65_536, "imem")),
        "firewall" | "fw" => (firewall::source(65_536), firewall::ported(65_536, "emem")),
        "lpm" => (lpm::source(10_000), lpm::ported_flow_cache(10_000)),
        "hh" | "heavy-hitter" => (heavy_hitter::source(4_096), heavy_hitter::ported(4_096)),
        "vnf" => (vnf::source(vnf::AUTOMATON_ENTRIES, vnf::STAT_BUCKETS), vnf::ported()),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use clara_lnic::profiles;

    /// Every NF source in the corpus passes the full frontend and lowers.
    #[test]
    fn all_sources_compile() {
        for (name, src) in [
            ("nat", nat::source()),
            ("dpi", dpi::source(4096)),
            ("fw", firewall::source(65_536)),
            ("lpm", lpm::source(10_000)),
            ("hh", heavy_hitter::source(4096)),
            ("vnf", vnf::source(4096, 1024)),
        ] {
            let program = clara_lang::frontend(&src)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            clara_cir::lower(&program).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    /// Every ported variant validates and runs on the simulator.
    #[test]
    fn all_fig1_variants_simulate() {
        let nic = profiles::netronome_agilio_cx40();
        for (nf, variants) in fig1_variants() {
            assert!((2..=4).contains(&variants.len()), "{nf} has {} variants", variants.len());
            for v in variants {
                v.program
                    .validate()
                    .unwrap_or_else(|e| panic!("{}: {e}", v.label));
                let trace = v.workload.to_trace(300, 42);
                let r = clara_nicsim::simulate(&nic, &v.program, &trace)
                    .unwrap_or_else(|e| panic!("{}: {e}", v.label));
                assert!(r.completed > 0, "{}", v.label);
                assert!(r.avg_latency_cycles > 0.0, "{}", v.label);
            }
        }
    }

    /// Figure 1's headline: across all NFs and variants, normalized
    /// latency spreads by an order of magnitude (paper: up to 13.8x).
    #[test]
    fn fig1_spread_is_large() {
        let nic = profiles::netronome_agilio_cx40();
        let mut worst_ratio: f64 = 1.0;
        for (_, variants) in fig1_variants() {
            let lat: Vec<f64> = variants
                .iter()
                .map(|v| {
                    let trace = v.workload.to_trace(600, 7);
                    clara_nicsim::simulate(&nic, &v.program, &trace)
                        .unwrap()
                        .avg_latency_cycles
                })
                .collect();
            let min = lat.iter().copied().fold(f64::INFINITY, f64::min);
            let max = lat.iter().copied().fold(0.0f64, f64::max);
            worst_ratio = worst_ratio.max(max / min);
        }
        assert!(worst_ratio > 8.0, "max variability only {worst_ratio:.1}x");
    }
}
