//! Network address translation.
//!
//! Maintains a per-flow binding table and rewrites the source address and
//! port of each packet, then recomputes the L4 checksum. Figure 1's two
//! NAT variants: one verifies the incoming checksum on the ingress
//! accelerator, the other computes everything in software (§2.1: "One
//! network address translation (NAT) variant uses the checksum
//! accelerator and the other does not").

use crate::Variant;
use clara_lnic::AccelKind;
use clara_nicsim::{BytesSpec, MicroOp, NicProgram, Stage, StageUnit, TableCfg};
use clara_workload::WorkloadProfile;

/// Binding-table capacity.
pub const TABLE_ENTRIES: u64 = 65_536;

/// The unported NFC source (what Clara analyzes).
///
/// The checksum is recomputed *after* the header rewrite, so Clara's
/// mapper must price it on the NPUs — matching the manual port below.
pub fn source() -> String {
    format!(
        r#"nf nat {{
    state flow_table: map<u64, u64>[{TABLE_ENTRIES}];

    fn handle(pkt: packet) -> action {{
        dpdk.parse_headers(pkt);
        let key: u64 = hash(pkt.src_ip, pkt.dst_ip, pkt.src_port, pkt.dst_port, pkt.proto);
        let binding: u64 = flow_table.lookup(key);
        if (binding == 0) {{
            binding = (key & 0xffff) | 0x0a640000;
            flow_table.insert(key, binding);
        }}
        pkt.set_src_ip(binding >> 16);
        pkt.set_src_port(binding & 0xffff);
        let ck: u16 = checksum(pkt);
        pkt.decrement_ttl();
        return forward;
    }}
}}"#
    )
}

fn binding_table(mem: &str, use_flow_cache: bool) -> TableCfg {
    TableCfg {
        name: "flow_table".into(),
        mem: mem.into(),
        entry_bytes: 24,
        entries: TABLE_ENTRIES,
        use_flow_cache,
    }
}

/// The manual port matching [`source`]: flow-cache-fronted binding table
/// backed by EMEM, software checksum recompute (post-rewrite — the
/// ingress engine cannot serve it).
pub fn ported() -> NicProgram {
    NicProgram {
        name: "nat".into(),
        tables: vec![binding_table("emem", true)],
        stages: vec![Stage {
            name: "translate".into(),
            unit: StageUnit::Npu,
            ops: vec![
                MicroOp::ParseHeader,
                MicroOp::Hash { count: 1 },
                MicroOp::TableLookup { table: 0 },
                MicroOp::MetadataMod { count: 3 }, // src ip, src port, ttl
                MicroOp::ChecksumSw,
            ],
        }],
    }
}

/// Figure-1 variant: incoming-checksum verification offloaded to the
/// ingress accelerator (then the translation path without the software
/// recompute — incremental update instead, 2 metadata-level ops).
pub fn ported_accel_verify() -> NicProgram {
    NicProgram {
        name: "nat-accel".into(),
        tables: vec![binding_table("emem", true)],
        stages: vec![
            Stage {
                name: "verify".into(),
                unit: StageUnit::Accel(AccelKind::Checksum),
                ops: vec![MicroOp::AccelCall { bytes: BytesSpec::Frame }],
            },
            Stage {
                name: "translate".into(),
                unit: StageUnit::Npu,
                ops: vec![
                    MicroOp::ParseHeader,
                    MicroOp::Hash { count: 1 },
                    MicroOp::TableLookup { table: 0 },
                    MicroOp::MetadataMod { count: 5 }, // rewrites + incremental fix-up
                ],
            },
        ],
    }
}

/// The two Figure-1 NAT variants, at a checksum-relevant packet size.
pub fn fig1_variants() -> Vec<Variant> {
    let workload = WorkloadProfile {
        avg_payload: 1000.0,
        max_payload: 1000,
        ..crate::paper_workload()
    };
    vec![
        Variant {
            label: "NAT/cksum-accel".into(),
            program: ported_accel_verify(),
            workload: workload.clone(),
        },
        Variant { label: "NAT/cksum-soft".into(), program: ported(), workload },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use clara_lnic::profiles;

    #[test]
    fn source_lowering_has_expected_shape() {
        let module = clara_cir::lower(&clara_lang::frontend(&source()).unwrap()).unwrap();
        assert_eq!(module.name, "nat");
        let calls: Vec<_> = module.handle.vcalls().map(|(_, c)| *c).collect();
        assert!(calls.contains(&clara_cir::VCall::ChecksumFull));
        assert!(calls
            .iter()
            .any(|c| matches!(c, clara_cir::VCall::TableLookup(_))));
    }

    #[test]
    fn accel_variant_is_faster_in_simulation() {
        let nic = profiles::netronome_agilio_cx40();
        let variants = fig1_variants();
        let lat: Vec<f64> = variants
            .iter()
            .map(|v| {
                let trace = v.workload.to_trace(500, 3);
                clara_nicsim::simulate(&nic, &v.program, &trace)
                    .unwrap()
                    .avg_latency_cycles
            })
            .collect();
        // accel (index 0) beats software recompute (index 1) by the
        // paper's ~1700-cycle memory-access margin at 1000-byte packets.
        assert!(lat[1] - lat[0] > 1000.0, "accel {} soft {}", lat[0], lat[1]);
    }

    #[test]
    fn simulated_nat_latency_grows_with_payload() {
        let nic = profiles::netronome_agilio_cx40();
        let prog = ported();
        let mk = |payload: f64| {
            WorkloadProfile { avg_payload: payload, max_payload: payload as usize, ..crate::paper_workload() }
                .to_trace(400, 9)
        };
        let small = clara_nicsim::simulate(&nic, &prog, &mk(200.0)).unwrap().avg_latency_cycles;
        let large = clara_nicsim::simulate(&nic, &prog, &mk(1400.0)).unwrap().avg_latency_cycles;
        assert!(large > 2.0 * small, "200B {small} 1400B {large}");
    }
}
