//! Stateful firewall: connection tracking keyed by five-tuple.
//!
//! Established flows pass; new flows are admitted only on SYN. Figure 1's
//! FW variants "store flow state in different memory locations and have
//! varying flow distributions" — both knobs are reproduced here.

use crate::Variant;
use clara_nicsim::{MicroOp, NicProgram, Stage, StageUnit, TableCfg};
use clara_workload::WorkloadProfile;

/// The unported NFC source with a connection table of `entries` slots.
pub fn source(entries: u64) -> String {
    format!(
        r#"nf fw {{
    state conns: map<u64, u64>[{entries}];

    fn handle(pkt: packet) -> action {{
        bpf.parse(pkt);
        let key: u64 = hash(pkt.src_ip, pkt.dst_ip, pkt.src_port, pkt.dst_port);
        let established: u64 = conns.lookup(key);
        if (established == 0) {{
            if (pkt.is_syn) {{
                conns.insert(key, 1);
                return forward;
            }}
            return drop;
        }}
        return forward;
    }}
}}"#
    )
}

/// The manual port with the connection table in `mem`.
pub fn ported(entries: u64, mem: &str) -> NicProgram {
    NicProgram {
        name: "fw".into(),
        tables: vec![TableCfg {
            name: "conns".into(),
            mem: mem.into(),
            entry_bytes: 24,
            entries,
            use_flow_cache: false,
        }],
        stages: vec![Stage {
            name: "conntrack".into(),
            unit: StageUnit::Npu,
            ops: vec![
                MicroOp::ParseHeader,
                MicroOp::Hash { count: 1 },
                MicroOp::TableLookup { table: 0 },
            ],
        }],
    }
}

/// Figure-1 FW variants: memory locations × flow distributions.
pub fn fig1_variants() -> Vec<Variant> {
    let base = crate::paper_workload();
    let few_flows = WorkloadProfile { flows: 1_000, ..base.clone() };
    let many_uniform = WorkloadProfile { flows: 200_000, zipf_alpha: 0.0, ..base.clone() };
    let many_skewed = WorkloadProfile { flows: 200_000, zipf_alpha: 1.2, ..base };
    vec![
        Variant {
            label: "FW/ctm-few-flows".into(),
            program: ported(4_096, "ctm0"), // 96 kB fits the CTM budget
            workload: few_flows.clone(),
        },
        Variant {
            label: "FW/imem-few-flows".into(),
            program: ported(65_536, "imem"),
            workload: few_flows,
        },
        Variant {
            label: "FW/emem-uniform".into(),
            program: ported(1 << 20, "emem"),
            workload: many_uniform,
        },
        Variant {
            label: "FW/emem-skewed".into(),
            program: ported(1 << 20, "emem"),
            workload: many_skewed,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use clara_lnic::profiles;

    #[test]
    fn source_behavior_via_interpreter() {
        let module = clara_cir::lower(&clara_lang::frontend(&source(1024)).unwrap()).unwrap();
        let mut state = clara_cir::HashState::new();
        let syn = clara_cir::PacketInfo::tcp(1, 2, 3, 4, 0).with_syn();
        let data = clara_cir::PacketInfo::tcp(1, 2, 3, 4, 100);
        // Data before SYN: dropped. SYN: admitted. Data after SYN: passes.
        let first =
            clara_cir::execute(&module.handle, &data, &mut state, 100_000).unwrap();
        assert!(!first.forward);
        let opened = clara_cir::execute(&module.handle, &syn, &mut state, 100_000).unwrap();
        assert!(opened.forward);
        let second =
            clara_cir::execute(&module.handle, &data, &mut state, 100_000).unwrap();
        assert!(second.forward);
    }

    #[test]
    fn memory_and_skew_drive_variability() {
        let nic = profiles::netronome_agilio_cx40();
        let lat: Vec<(String, f64)> = fig1_variants()
            .iter()
            .map(|v| {
                let trace = v.workload.to_trace(2_000, 8);
                (
                    v.label.clone(),
                    clara_nicsim::simulate(&nic, &v.program, &trace)
                        .unwrap()
                        .avg_latency_cycles,
                )
            })
            .collect();
        let get = |name: &str| lat.iter().find(|(l, _)| l.contains(name)).unwrap().1;
        // CTM placement beats IMEM; uniform EMEM misses beat nothing.
        assert!(get("ctm") < get("imem"), "{lat:?}");
        assert!(get("imem") < get("emem-uniform"), "{lat:?}");
        // Skewed flows hit the EMEM cache more than uniform ones.
        assert!(get("emem-skewed") < get("emem-uniform"), "{lat:?}");
    }
}
